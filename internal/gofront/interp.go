package gofront

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/core"
)

// maxInterpDepth bounds interpreted call recursion; maxInterpSteps
// bounds host-side statements per thread invocation, so a loop that
// never touches a cxl operation (and therefore never yields to the
// checker's own livelock detection) still dies with a positioned fault
// instead of wedging the scheduler.
const (
	maxInterpDepth = 4096
	maxInterpSteps = 50_000_000
)

// execCtx is the state shared by every interpreted thread of one
// program execution: the loaded source, the program under construction
// and the optional vet site map.
type execCtx struct {
	src   *Source
	prog  *core.Program
	sites *SiteMap
}

// interp interprets checked functions for one phase: t is nil while
// setup runs (Region methods legal, thread operations not) and the
// simulated thread once spawned code runs.
type interp struct {
	ec    *execCtx
	t     *core.Thread
	depth int
	steps int
}

// ctl is statement-level control flow.
type ctl int

const (
	ctlNext ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// frame is one interpreted call activation.
type frame struct {
	sc      *scope
	results []value
	defers  []deferred
}

// deferred is one pending deferred call: callee and arguments were
// resolved and evaluated at defer time, the call itself runs at unwind.
type deferred struct {
	run func() []value
}

func (ic *interp) faultf(pos token.Pos, format string, args ...any) {
	ic.ec.src.faultf(pos, format, args...)
}

// invoke runs a function or method body with args already evaluated.
// Deferred calls run via a real Go defer, so when a reported bug
// unwinds the simulated thread (KillSelf panics through the
// interpreter), interpreted defers execute exactly like the hand-ported
// benchmarks' Go defers do — mutexes get unlocked during bug unwinding,
// keeping op streams and decision trees identical.
func (ic *interp) invoke(fn funcVal, args []value, pos token.Pos) []value {
	ic.depth++
	defer func() { ic.depth-- }()
	if ic.depth > maxInterpDepth {
		ic.faultf(pos, "interpreted call stack exceeds %d frames", maxInterpDepth)
	}

	var ftype *ast.FuncType
	var body *ast.BlockStmt
	parent := fn.env
	switch {
	case fn.lit != nil:
		ftype, body = fn.lit.Type, fn.lit.Body
	case fn.decl != nil:
		ftype, body = fn.decl.Type, fn.decl.Body
		parent = nil
	default:
		ic.faultf(pos, "call of nil function")
	}
	if body == nil {
		ic.faultf(pos, "call of bodyless function")
	}

	fr := &frame{sc: newScope(parent)}
	if fn.hasRecv {
		recvField := fn.decl.Recv.List[0]
		if len(recvField.Names) == 1 {
			fr.sc.define(ic.ec.src.info.Defs[recvField.Names[0]], fn.recv)
		}
	}
	i := 0
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if i >= len(args) {
				ic.faultf(pos, "not enough arguments in interpreted call")
			}
			fr.sc.define(ic.ec.src.info.Defs[name], args[i])
			i++
		}
	}

	defer ic.runDefers(fr)
	ic.execBlock(fr, fr.sc, body)
	return fr.results
}

func (ic *interp) runDefers(fr *frame) {
	for i := len(fr.defers) - 1; i >= 0; i-- {
		fr.defers[i].run()
	}
}

// ---- statements ----

func (ic *interp) execBlock(fr *frame, parent *scope, block *ast.BlockStmt) ctl {
	sc := newScope(parent)
	for _, stmt := range block.List {
		if c := ic.execStmt(fr, sc, stmt); c != ctlNext {
			return c
		}
	}
	return ctlNext
}

func (ic *interp) execStmt(fr *frame, sc *scope, stmt ast.Stmt) ctl {
	ic.steps++
	if ic.steps > maxInterpSteps {
		ic.faultf(stmt.Pos(), "statement budget exceeded (%d): possible infinite loop with no cxl operations", maxInterpSteps)
	}
	switch st := stmt.(type) {
	case *ast.EmptyStmt:
		return ctlNext

	case *ast.BlockStmt:
		return ic.execBlock(fr, sc, st)

	case *ast.ExprStmt:
		ic.evalMulti(fr, sc, st.X)
		return ctlNext

	case *ast.DeclStmt:
		gd := st.Decl.(*ast.GenDecl)
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				ic.faultf(spec.Pos(), "unsupported declaration")
			}
			for i, name := range vs.Names {
				obj := ic.ec.src.info.Defs[name]
				if len(vs.Values) > i {
					sc.define(obj, ic.evalExpr(fr, sc, vs.Values[i]))
					continue
				}
				zv, ok := zeroValue(obj.Type())
				if !ok {
					ic.faultf(name.Pos(), "cannot zero-initialize a variable of type %s", obj.Type())
				}
				sc.define(obj, zv)
			}
		}
		return ctlNext

	case *ast.AssignStmt:
		ic.execAssign(fr, sc, st)
		return ctlNext

	case *ast.IncDecStmt:
		cur, ok := ic.evalExpr(fr, sc, st.X).(num)
		if !ok {
			ic.faultf(st.Pos(), "++/-- on non-integer value")
		}
		delta := uint64(1)
		if st.Tok == token.DEC {
			delta = ^uint64(0) // -1
		}
		ic.assignTo(fr, sc, st.X, makeNum(cur.bits+delta, cur.kind))
		return ctlNext

	case *ast.IfStmt:
		isc := sc
		if st.Init != nil {
			isc = newScope(sc)
			ic.execStmt(fr, isc, st.Init)
		}
		if ic.evalBool(fr, isc, st.Cond) {
			return ic.execBlock(fr, isc, st.Body)
		}
		if st.Else != nil {
			return ic.execStmt(fr, newScope(isc), st.Else)
		}
		return ctlNext

	case *ast.ForStmt:
		return ic.execFor(fr, sc, st)

	case *ast.RangeStmt:
		return ic.execRange(fr, sc, st)

	case *ast.SwitchStmt:
		return ic.execSwitch(fr, sc, st)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			return ctlBreak
		case token.CONTINUE:
			return ctlContinue
		}
		ic.faultf(st.Pos(), "unsupported branch statement %s", st.Tok)

	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if len(st.Results) == 1 {
				fr.results = append(fr.results, ic.evalMulti(fr, sc, res)...)
				break
			}
			fr.results = append(fr.results, ic.evalExpr(fr, sc, res))
		}
		return ctlReturn

	case *ast.DeferStmt:
		fr.defers = append(fr.defers, deferred{run: ic.prepareCall(fr, sc, st.Call)})
		return ctlNext
	}
	ic.faultf(stmt.Pos(), "unsupported statement")
	return ctlNext
}

// loopVars returns the objects an init statement declared, for
// per-iteration rebinding.
func loopVars(info *types.Info, init ast.Stmt) []types.Object {
	as, ok := init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return nil
	}
	var objs []types.Object
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

func (ic *interp) execFor(fr *frame, sc *scope, st *ast.ForStmt) ctl {
	lsc := newScope(sc)
	var vars []types.Object
	if st.Init != nil {
		ic.execStmt(fr, lsc, st.Init)
		vars = loopVars(ic.ec.src.info, st.Init)
	}
	for {
		if st.Cond != nil && !ic.evalBool(fr, lsc, st.Cond) {
			return ctlNext
		}
		// Go ≥1.22: each iteration gets its own loop variables. Run the
		// body in a scope with fresh cells seeded from the loop scope,
		// then copy the (possibly mutated) values back for cond/post.
		isc := newScope(lsc)
		for _, obj := range vars {
			if cell, ok := lsc.lookup(obj); ok {
				isc.define(obj, *cell)
			}
		}
		c := ic.execBlock(fr, isc, st.Body)
		for _, obj := range vars {
			if cell, ok := isc.vars[obj]; ok {
				if lcell, ok := lsc.lookup(obj); ok {
					*lcell = *cell
				}
			}
		}
		if c == ctlBreak {
			return ctlNext
		}
		if c == ctlReturn {
			return c
		}
		if st.Post != nil {
			ic.execStmt(fr, lsc, st.Post)
		}
	}
}

func (ic *interp) execRange(fr *frame, sc *scope, st *ast.RangeStmt) ctl {
	if st.Tok == token.ASSIGN {
		ic.faultf(st.Pos(), "range with = assignment is unsupported (use :=)")
	}
	xv := ic.evalExpr(fr, sc, st.X)
	iter := func(i int, elem value, hasElem bool) ctl {
		isc := newScope(sc)
		if st.Key != nil {
			if id, ok := st.Key.(*ast.Ident); ok {
				isc.define(ic.ec.src.info.Defs[id], makeNum(uint64(i), types.Int))
			}
		}
		if st.Value != nil && hasElem {
			if id, ok := st.Value.(*ast.Ident); ok {
				isc.define(ic.ec.src.info.Defs[id], elem)
			}
		}
		return ic.execBlock(fr, isc, st.Body)
	}
	switch x := xv.(type) {
	case sliceVal:
		for i, elem := range x.elems {
			switch iter(i, elem, true) {
			case ctlBreak:
				return ctlNext
			case ctlReturn:
				return ctlReturn
			}
		}
		return ctlNext
	case num:
		// Go ≥1.22 range-over-int; the key takes 0..n-1. Range over
		// negative n iterates zero times. The key's static type matches
		// the range operand.
		n := x.signed()
		for i := int64(0); i < n; i++ {
			isc := newScope(sc)
			if st.Key != nil {
				if id, ok := st.Key.(*ast.Ident); ok {
					isc.define(ic.ec.src.info.Defs[id], makeNum(uint64(i), x.kind))
				}
			}
			switch ic.execBlock(fr, isc, st.Body) {
			case ctlBreak:
				return ctlNext
			case ctlReturn:
				return ctlReturn
			}
		}
		return ctlNext
	}
	ic.faultf(st.X.Pos(), "range over unsupported value")
	return ctlNext
}

func (ic *interp) execSwitch(fr *frame, sc *scope, st *ast.SwitchStmt) ctl {
	ssc := sc
	if st.Init != nil {
		ssc = newScope(sc)
		ic.execStmt(fr, ssc, st.Init)
	}
	var tag value
	hasTag := st.Tag != nil
	if hasTag {
		tag = ic.evalExpr(fr, ssc, st.Tag)
	}
	var deflt *ast.CaseClause
	for _, clause := range st.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			var match bool
			if hasTag {
				match = ic.valuesEqual(tag, ic.evalExpr(fr, ssc, e), e.Pos())
			} else {
				match = ic.evalBool(fr, ssc, e)
			}
			if match {
				return ic.execCaseBody(fr, ssc, cc)
			}
		}
	}
	if deflt != nil {
		return ic.execCaseBody(fr, ssc, deflt)
	}
	return ctlNext
}

func (ic *interp) execCaseBody(fr *frame, sc *scope, cc *ast.CaseClause) ctl {
	csc := newScope(sc)
	for _, s := range cc.Body {
		c := ic.execStmt(fr, csc, s)
		if c == ctlBreak {
			return ctlNext // break inside switch leaves the switch
		}
		if c != ctlNext {
			return c
		}
	}
	return ctlNext
}

func (ic *interp) execAssign(fr *frame, sc *scope, st *ast.AssignStmt) {
	// Multi-value RHS: a single call/two-result expression feeding
	// multiple LHS targets.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		vals := ic.evalMulti(fr, sc, st.Rhs[0])
		if len(vals) != len(st.Lhs) {
			ic.faultf(st.Pos(), "assignment mismatch: %d targets, %d values", len(st.Lhs), len(vals))
		}
		ic.bindAssign(fr, sc, st, vals)
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		ic.faultf(st.Pos(), "assignment mismatch: %d targets, %d values", len(st.Lhs), len(st.Rhs))
	}
	if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
		// Evaluate every RHS before assigning (parallel assignment:
		// a, b = b, a must swap).
		vals := make([]value, len(st.Rhs))
		for i, rhs := range st.Rhs {
			vals[i] = ic.evalExpr(fr, sc, rhs)
		}
		ic.bindAssign(fr, sc, st, vals)
		return
	}
	// Op-assign (+=, <<=, ...): single target.
	cur, ok := ic.evalExpr(fr, sc, st.Lhs[0]).(num)
	if !ok {
		ic.faultf(st.Pos(), "%s on non-integer value", st.Tok)
	}
	rhs := ic.evalExpr(fr, sc, st.Rhs[0])
	op := assignOp(st.Tok)
	res := ic.applyBinary(op, cur, rhs, st.Pos())
	ic.assignTo(fr, sc, st.Lhs[0], res)
}

func (ic *interp) bindAssign(fr *frame, sc *scope, st *ast.AssignStmt, vals []value) {
	for i, lhs := range st.Lhs {
		if st.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := ic.ec.src.info.Defs[id]; obj != nil {
					sc.define(obj, vals[i])
					continue
				}
				// := with an already-declared variable on the left
				// (redeclaration) assigns.
			}
		}
		ic.assignTo(fr, sc, lhs, vals[i])
	}
}

func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

// assignTo stores v into an lvalue expression.
func (ic *interp) assignTo(fr *frame, sc *scope, lhs ast.Expr, v value) {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := ic.ec.src.info.Uses[e]
		if obj == nil {
			obj = ic.ec.src.info.Defs[e]
		}
		cell, ok := sc.lookup(obj)
		if !ok {
			ic.faultf(e.Pos(), "assignment to undeclared variable %s", e.Name)
		}
		*cell = v
	case *ast.SelectorExpr:
		sv, ok := ic.evalExpr(fr, sc, e.X).(*structVal)
		if !ok || sv == nil {
			ic.faultf(e.Pos(), "field assignment on non-struct value")
		}
		cell, ok := sv.fields[e.Sel.Name]
		if !ok {
			ic.faultf(e.Pos(), "struct %s has no field %s", sv.typeName, e.Sel.Name)
		}
		*cell = v
	case *ast.IndexExpr:
		s, ok := ic.evalExpr(fr, sc, e.X).(sliceVal)
		if !ok {
			ic.faultf(e.Pos(), "index assignment on non-slice value")
		}
		idx := ic.evalIndex(fr, sc, e.Index, len(s.elems))
		s.elems[idx] = v
	case *ast.ParenExpr:
		ic.assignTo(fr, sc, e.X, v)
	default:
		ic.faultf(lhs.Pos(), "unsupported assignment target")
	}
}

// ---- expressions ----

func (ic *interp) evalBool(fr *frame, sc *scope, e ast.Expr) bool {
	b, ok := ic.evalExpr(fr, sc, e).(boolVal)
	if !ok {
		ic.faultf(e.Pos(), "non-boolean condition")
	}
	return bool(b)
}

func (ic *interp) evalIndex(fr *frame, sc *scope, e ast.Expr, length int) int {
	n, ok := ic.evalExpr(fr, sc, e).(num)
	if !ok {
		ic.faultf(e.Pos(), "non-integer index")
	}
	idx := n.signed()
	if idx < 0 || idx >= int64(length) {
		ic.faultf(e.Pos(), "index out of range [%d] with length %d", idx, length)
	}
	return int(idx)
}

// evalExpr evaluates an expression expected to produce exactly one
// value.
func (ic *interp) evalExpr(fr *frame, sc *scope, e ast.Expr) value {
	vals := ic.evalMulti(fr, sc, e)
	if len(vals) != 1 {
		ic.faultf(e.Pos(), "expression yields %d values where one is required", len(vals))
	}
	return vals[0]
}

// evalMulti evaluates an expression that may produce multiple values
// (multi-result calls).
func (ic *interp) evalMulti(fr *frame, sc *scope, e ast.Expr) []value {
	info := ic.ec.src.info
	// Constant expressions (literals, consts, untyped arithmetic) come
	// straight from the type checker.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		v, ok := constValue(tv.Value, tv.Type)
		if !ok {
			ic.faultf(e.Pos(), "unsupported constant")
		}
		return []value{v}
	}

	switch x := e.(type) {
	case *ast.ParenExpr:
		return ic.evalMulti(fr, sc, x.X)

	case *ast.Ident:
		return []value{ic.evalIdent(sc, x)}

	case *ast.FuncLit:
		return []value{funcVal{lit: x, env: sc}}

	case *ast.UnaryExpr:
		return []value{ic.evalUnary(fr, sc, x)}

	case *ast.BinaryExpr:
		return []value{ic.evalBinary(fr, sc, x)}

	case *ast.CallExpr:
		return ic.evalCall(fr, sc, x)

	case *ast.SelectorExpr:
		return []value{ic.evalSelector(fr, sc, x)}

	case *ast.IndexExpr:
		s, ok := ic.evalExpr(fr, sc, x.X).(sliceVal)
		if !ok {
			ic.faultf(x.Pos(), "index of non-slice value")
		}
		return []value{s.elems[ic.evalIndex(fr, sc, x.Index, len(s.elems))]}

	case *ast.CompositeLit:
		return []value{ic.evalCompositeLit(fr, sc, x, false)}
	}
	ic.faultf(e.Pos(), "unsupported expression")
	return nil
}

func (ic *interp) evalIdent(sc *scope, id *ast.Ident) value {
	info := ic.ec.src.info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	switch o := obj.(type) {
	case *types.Nil:
		return nilVal{}
	case *types.Var:
		if cell, ok := sc.lookup(o); ok {
			return *cell
		}
		ic.faultf(id.Pos(), "variable %s is not initialized here", id.Name)
	case *types.Func:
		if fd, ok := ic.ec.src.funcs[id.Name]; ok {
			return funcVal{decl: fd}
		}
		ic.faultf(id.Pos(), "function %s has no interpretable body", id.Name)
	}
	ic.faultf(id.Pos(), "unsupported identifier %s", id.Name)
	return nil
}

func (ic *interp) evalUnary(fr *frame, sc *scope, x *ast.UnaryExpr) value {
	switch x.Op {
	case token.AND:
		cl, ok := x.X.(*ast.CompositeLit)
		if !ok {
			ic.faultf(x.Pos(), "& is only supported on struct literals")
		}
		return ic.evalCompositeLit(fr, sc, cl, true)
	case token.NOT:
		return boolVal(!ic.evalBool(fr, sc, x.X))
	case token.SUB:
		n, ok := ic.evalExpr(fr, sc, x.X).(num)
		if !ok {
			ic.faultf(x.Pos(), "unary - on non-integer value")
		}
		return makeNum(-n.bits, n.kind)
	case token.XOR:
		n, ok := ic.evalExpr(fr, sc, x.X).(num)
		if !ok {
			ic.faultf(x.Pos(), "unary ^ on non-integer value")
		}
		return makeNum(^n.bits, n.kind)
	case token.ADD:
		return ic.evalExpr(fr, sc, x.X)
	}
	ic.faultf(x.Pos(), "unsupported unary operator %s", x.Op)
	return nil
}

func (ic *interp) evalBinary(fr *frame, sc *scope, x *ast.BinaryExpr) value {
	switch x.Op {
	case token.LAND:
		if !ic.evalBool(fr, sc, x.X) {
			return boolVal(false)
		}
		return boolVal(ic.evalBool(fr, sc, x.Y))
	case token.LOR:
		if ic.evalBool(fr, sc, x.X) {
			return boolVal(true)
		}
		return boolVal(ic.evalBool(fr, sc, x.Y))
	}
	xv := ic.evalExpr(fr, sc, x.X)
	yv := ic.evalExpr(fr, sc, x.Y)
	xn, xIsNum := xv.(num)
	if xIsNum {
		return ic.applyBinary(x.Op, xn, yv, x.Pos())
	}
	switch x.Op {
	case token.EQL:
		return boolVal(ic.valuesEqual(xv, yv, x.Pos()))
	case token.NEQ:
		return boolVal(!ic.valuesEqual(xv, yv, x.Pos()))
	case token.ADD:
		if a, ok := xv.(strVal); ok {
			if b, ok := yv.(strVal); ok {
				return a + b
			}
		}
	}
	ic.faultf(x.Pos(), "unsupported binary operator %s", x.Op)
	return nil
}

func (ic *interp) applyBinary(op token.Token, x num, yv value, pos token.Pos) value {
	y, ok := yv.(num)
	if !ok {
		ic.faultf(pos, "mixed operand types in binary %s", op)
	}
	switch op {
	case token.SHL, token.SHR:
		res, ok := shift(op, x, y)
		if !ok {
			ic.faultf(pos, "negative shift amount")
		}
		return res
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		res, ok := compare(op, x, y)
		if !ok {
			ic.faultf(pos, "unsupported comparison %s", op)
		}
		return boolVal(res)
	default:
		res, ok := arith(op, x, y)
		if !ok {
			if op == token.QUO || op == token.REM {
				ic.faultf(pos, "runtime error: integer divide by zero")
			}
			ic.faultf(pos, "unsupported arithmetic operator %s", op)
		}
		return res
	}
}

func (ic *interp) valuesEqual(x, y value, pos token.Pos) bool {
	if xn, ok := x.(num); ok {
		yn, ok := y.(num)
		if !ok {
			ic.faultf(pos, "mixed operand types in comparison")
		}
		eq, _ := compare(token.EQL, xn, yn)
		return eq
	}
	eq, ok := equalValues(x, y)
	if !ok {
		ic.faultf(pos, "unsupported comparison")
	}
	return eq
}

func (ic *interp) evalSelector(fr *frame, sc *scope, x *ast.SelectorExpr) value {
	info := ic.ec.src.info
	if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
		sv, ok := ic.evalExpr(fr, sc, x.X).(*structVal)
		if !ok || sv == nil {
			ic.faultf(x.Pos(), "field access on nil or non-struct value")
		}
		cell, ok := sv.fields[x.Sel.Name]
		if !ok {
			ic.faultf(x.Pos(), "struct %s has no field %s", sv.typeName, x.Sel.Name)
		}
		return *cell
	}
	ic.faultf(x.Pos(), "unsupported selector %s (method values must be called directly)", x.Sel.Name)
	return nil
}

func (ic *interp) evalCompositeLit(fr *frame, sc *scope, cl *ast.CompositeLit, addressed bool) value {
	info := ic.ec.src.info
	t := info.Types[cl].Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		var elems []value
		for _, e := range cl.Elts {
			if _, ok := e.(*ast.KeyValueExpr); ok {
				ic.faultf(e.Pos(), "keyed slice literals are unsupported")
			}
			elems = append(elems, ic.evalExpr(fr, sc, e))
		}
		return sliceVal{elems: elems, elem: u.Elem()}
	case *types.Struct:
		if !addressed {
			ic.faultf(cl.Pos(), "struct values must be created with &T{...} (structs are pointer-shaped in the checked subset)")
		}
		name := "struct"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		sv := &structVal{typeName: name, fields: map[string]*value{}}
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			zv, ok := zeroValue(f.Type())
			if !ok {
				zv = nilVal{}
			}
			cell := new(value)
			*cell = zv
			sv.fields[f.Name()] = cell
		}
		for i, e := range cl.Elts {
			kv, ok := e.(*ast.KeyValueExpr)
			if ok {
				*sv.fields[kv.Key.(*ast.Ident).Name] = ic.evalExpr(fr, sc, kv.Value)
				continue
			}
			*sv.fields[u.Field(i).Name()] = ic.evalExpr(fr, sc, e)
		}
		return sv
	}
	ic.faultf(cl.Pos(), "unsupported composite literal type %s", t)
	return nil
}
