package gofront

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/core"
)

// evalCall resolves and immediately performs a call expression.
func (ic *interp) evalCall(fr *frame, sc *scope, call *ast.CallExpr) []value {
	return ic.prepareCall(fr, sc, call)()
}

// prepareCall resolves the callee and evaluates the arguments (and any
// method receiver) eagerly, returning a closure that performs the call:
// the split is what gives defer its Go semantics (arguments at defer
// time, call at unwind time).
func (ic *interp) prepareCall(fr *frame, sc *scope, call *ast.CallExpr) func() []value {
	info := ic.ec.src.info
	pos := call.Pos()

	// Type conversion: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		arg := ic.evalExpr(fr, sc, call.Args[0])
		return func() []value { return []value{ic.convert(arg, tv.Type, pos)} }
	}

	// Builtin: len/cap/append/make.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return ic.prepareBuiltin(fr, sc, b.Name(), call)
		}
	}

	// Selector: cxl package function, cxl method, or user method.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() == ic.ec.src.cxlPkg {
			if selInfo, isMethod := info.Selections[sel]; isMethod && selInfo.Kind() == types.MethodVal {
				recv := ic.evalExpr(fr, sc, sel.X)
				args := ic.evalArgs(fr, sc, call)
				return func() []value { return ic.cxlMethod(fn.Name(), recv, args, pos) }
			}
			args := ic.evalArgs(fr, sc, call)
			expand := call.Ellipsis.IsValid()
			return func() []value { return ic.cxlFunc(fn.Name(), args, expand, pos) }
		}
		if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			recv := ic.evalExpr(fr, sc, sel.X)
			tname := namedTypeName(selInfo.Recv())
			decl, ok := ic.ec.src.methods[methodKey{typeName: tname, method: sel.Sel.Name}]
			if !ok {
				ic.faultf(pos, "method %s.%s has no interpretable body", tname, sel.Sel.Name)
			}
			fn := funcVal{decl: decl, recv: recv, hasRecv: true}
			args := ic.evalArgs(fr, sc, call)
			return func() []value { return ic.invoke(fn, args, pos) }
		}
		ic.faultf(pos, "unsupported call target")
	}

	// Plain function value: named function or a closure in a variable.
	fnv, ok := ic.evalExpr(fr, sc, call.Fun).(funcVal)
	if !ok {
		ic.faultf(pos, "call of non-function value")
	}
	args := ic.evalArgs(fr, sc, call)
	return func() []value { return ic.invoke(fnv, args, pos) }
}

func (ic *interp) evalArgs(fr *frame, sc *scope, call *ast.CallExpr) []value {
	args := make([]value, len(call.Args))
	for i, a := range call.Args {
		args[i] = ic.evalExpr(fr, sc, a)
	}
	return args
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func (ic *interp) convert(v value, t types.Type, pos token.Pos) value {
	k, ok := basicKindOf(t)
	if !ok {
		ic.faultf(pos, "unsupported conversion to %s", t)
	}
	switch x := v.(type) {
	case num:
		if !isIntegerKind(k) {
			ic.faultf(pos, "unsupported conversion of integer to %s", t)
		}
		// Conversion semantics: signed sources sign-extend, then the
		// target kind truncates.
		bits := x.bits
		if kindSigned(x.kind) {
			bits = uint64(x.signed())
		}
		return makeNum(bits, k)
	case boolVal:
		if k == types.Bool {
			return x
		}
	case strVal:
		if k == types.String {
			return x
		}
	}
	ic.faultf(pos, "unsupported conversion to %s", t)
	return nil
}

func (ic *interp) prepareBuiltin(fr *frame, sc *scope, name string, call *ast.CallExpr) func() []value {
	pos := call.Pos()
	switch name {
	case "len", "cap":
		arg := ic.evalExpr(fr, sc, call.Args[0])
		return func() []value {
			switch x := arg.(type) {
			case sliceVal:
				if name == "cap" {
					return []value{makeNum(uint64(cap(x.elems)), types.Int)}
				}
				return []value{makeNum(uint64(len(x.elems)), types.Int)}
			case strVal:
				return []value{makeNum(uint64(len(x)), types.Int)}
			}
			ic.faultf(pos, "%s of unsupported value", name)
			return nil
		}
	case "append":
		base, ok := ic.evalExpr(fr, sc, call.Args[0]).(sliceVal)
		if !ok {
			ic.faultf(pos, "append to non-slice value")
		}
		var extra []value
		if call.Ellipsis.IsValid() {
			s2, ok := ic.evalExpr(fr, sc, call.Args[1]).(sliceVal)
			if !ok {
				ic.faultf(pos, "append of non-slice with ...")
			}
			extra = s2.elems
		} else {
			for _, a := range call.Args[1:] {
				extra = append(extra, ic.evalExpr(fr, sc, a))
			}
		}
		return func() []value {
			return []value{sliceVal{elems: append(base.elems, extra...), elem: base.elem}}
		}
	case "make":
		tv := ic.ec.src.info.Types[call.Args[0]]
		st, ok := tv.Type.Underlying().(*types.Slice)
		if !ok {
			ic.faultf(pos, "make of non-slice type is unsupported")
		}
		n, okN := ic.evalExpr(fr, sc, call.Args[1]).(num)
		if !okN || n.signed() < 0 {
			ic.faultf(pos, "make with invalid length")
		}
		if len(call.Args) > 2 {
			ic.evalExpr(fr, sc, call.Args[2]) // capacity: evaluated, not modeled
		}
		return func() []value {
			elems := make([]value, n.signed())
			for i := range elems {
				zv, ok := zeroValue(st.Elem())
				if !ok {
					ic.faultf(pos, "make of slice with unsupported element type %s", st.Elem())
				}
				elems[i] = zv
			}
			return []value{sliceVal{elems: elems, elem: st.Elem()}}
		}
	}
	ic.faultf(pos, "unsupported builtin %s", name)
	return nil
}

// ---- cxl API lowering ----

func (ic *interp) setupOnly(name string, pos token.Pos) *core.Program {
	if ic.t != nil {
		ic.faultf(pos, "cxl: %s is setup-only (call it from the entry function, not from a spawned thread)", name)
	}
	return ic.ec.prog
}

func (ic *interp) threadOnly(name string, pos token.Pos) *core.Thread {
	if ic.t == nil {
		ic.faultf(pos, "cxl.%s runs on a simulated thread; it cannot be called during setup (use Machine.Spawn)", name)
	}
	return ic.t
}

func (ic *interp) argNum(args []value, i int, what string, pos token.Pos) num {
	n, ok := args[i].(num)
	if !ok {
		ic.faultf(pos, "cxl: %s argument %d must be an integer", what, i+1)
	}
	return n
}

func (ic *interp) argAddr(args []value, i int, what string, pos token.Pos) core.Addr {
	return core.Addr(ic.argNum(args, i, what, pos).bits)
}

func (ic *interp) argStr(args []value, i int, what string, pos token.Pos) string {
	s, ok := args[i].(strVal)
	if !ok {
		ic.faultf(pos, "cxl: %s argument %d must be a string", what, i+1)
	}
	return string(s)
}

// cxlMethod dispatches methods on cxl API objects (Region, Machine,
// Mutex).
func (ic *interp) cxlMethod(name string, recv value, args []value, pos token.Pos) []value {
	switch r := recv.(type) {
	case regionVal:
		p := ic.setupOnly("Region."+name, pos)
		switch name {
		case "Alloc":
			return []value{makeNum(uint64(p.Alloc(ic.argNum(args, 0, name, pos).bits)), types.Uint64)}
		case "AllocAligned":
			return []value{makeNum(uint64(p.AllocAligned(
				ic.argNum(args, 0, name, pos).bits, ic.argNum(args, 1, name, pos).bits)), types.Uint64)}
		case "Init64":
			p.Init64(ic.argAddr(args, 0, name, pos), ic.argNum(args, 1, name, pos).bits)
			return nil
		case "NewMachine":
			return []value{machineVal{m: p.NewMachine(ic.argStr(args, 0, name, pos))}}
		case "NewMutex":
			mname := ic.argStr(args, 0, name, pos)
			ic.ec.sites.recordMutex(mname, pos)
			return []value{mutexVal{mu: p.NewMutex(mname)}}
		}

	case machineVal:
		if name != "Spawn" {
			break
		}
		ic.setupOnly("Machine.Spawn", pos)
		tname := ic.argStr(args, 0, name, pos)
		fn, ok := args[1].(funcVal)
		if !ok {
			ic.faultf(pos, "cxl: Machine.Spawn needs a func() argument")
		}
		ec := ic.ec
		t := r.m.Thread(tname, func(t *core.Thread) {
			tic := &interp{ec: ec, t: t}
			tic.invoke(fn, nil, pos)
		})
		return []value{threadVal{t: t}}

	case mutexVal:
		t := ic.threadOnly("Mutex."+name, pos)
		switch name {
		case "Lock":
			return []value{boolVal(r.mu.Lock(t))}
		case "TryLock":
			acquired, ownerFailed := r.mu.TryLock(t)
			return []value{boolVal(acquired), boolVal(ownerFailed)}
		case "Unlock":
			r.mu.Unlock(t)
			return nil
		case "OwnerFailed":
			return []value{boolVal(r.mu.OwnerFailed())}
		}
	}
	ic.faultf(pos, "unsupported cxl method %s", name)
	return nil
}

// cxlFunc dispatches the package-level cxl functions — the thread
// operations that lower to simulated events.
func (ic *interp) cxlFunc(name string, args []value, expandEllipsis bool, pos token.Pos) []value {
	if name == "RunNative" {
		ic.faultf(pos, "cxl.RunNative is native-only: the checker calls the entry function directly (keep RunNative inside func main)")
	}
	t := ic.threadOnly(name, pos)
	switch name {
	case "Load8":
		return []value{makeNum(uint64(t.Load8(ic.argAddr(args, 0, name, pos))), types.Uint8)}
	case "Load16":
		return []value{makeNum(uint64(t.Load16(ic.argAddr(args, 0, name, pos))), types.Uint16)}
	case "Load32":
		return []value{makeNum(uint64(t.Load32(ic.argAddr(args, 0, name, pos))), types.Uint32)}
	case "Load64":
		return []value{makeNum(t.Load64(ic.argAddr(args, 0, name, pos)), types.Uint64)}
	case "Store8", "Store16", "Store32", "Store64":
		a := ic.argAddr(args, 0, name, pos)
		v := ic.argNum(args, 1, name, pos).bits
		ic.ec.sites.recordStore(a, pos)
		switch name {
		case "Store8":
			t.Store8(a, uint8(v))
		case "Store16":
			t.Store16(a, uint16(v))
		case "Store32":
			t.Store32(a, uint32(v))
		case "Store64":
			t.Store64(a, v)
		}
		return nil
	case "Flush":
		a := ic.argAddr(args, 0, name, pos)
		ic.ec.sites.recordFlush(a, pos)
		t.CLFlush(a)
		return nil
	case "FlushOpt":
		a := ic.argAddr(args, 0, name, pos)
		ic.ec.sites.recordFlush(a, pos)
		t.CLFlushOpt(a)
		return nil
	case "CLWB":
		a := ic.argAddr(args, 0, name, pos)
		ic.ec.sites.recordFlush(a, pos)
		t.CLWB(a)
		return nil
	case "Fence":
		t.SFence()
		return nil
	case "MFence":
		t.MFence()
		return nil
	case "CAS64":
		prev, swapped := t.CAS64(ic.argAddr(args, 0, name, pos),
			ic.argNum(args, 1, name, pos).bits, ic.argNum(args, 2, name, pos).bits)
		return []value{makeNum(prev, types.Uint64), boolVal(swapped)}
	case "CAS32":
		prev, swapped := t.CAS32(ic.argAddr(args, 0, name, pos),
			uint32(ic.argNum(args, 1, name, pos).bits), uint32(ic.argNum(args, 2, name, pos).bits))
		return []value{makeNum(uint64(prev), types.Uint32), boolVal(swapped)}
	case "Swap64":
		return []value{makeNum(t.Swap64(ic.argAddr(args, 0, name, pos),
			ic.argNum(args, 1, name, pos).bits), types.Uint64)}
	case "FetchAdd64":
		return []value{makeNum(t.FetchAdd64(ic.argAddr(args, 0, name, pos),
			ic.argNum(args, 1, name, pos).bits), types.Uint64)}
	case "FetchAdd32":
		return []value{makeNum(uint64(t.FetchAdd32(ic.argAddr(args, 0, name, pos),
			uint32(ic.argNum(args, 1, name, pos).bits))), types.Uint32)}
	case "Alloc":
		return []value{makeNum(uint64(t.Alloc(ic.argNum(args, 0, name, pos).bits)), types.Uint64)}
	case "AllocAligned":
		return []value{makeNum(uint64(t.AllocAligned(
			ic.argNum(args, 0, name, pos).bits, ic.argNum(args, 1, name, pos).bits)), types.Uint64)}
	case "Assert":
		cond, ok := args[0].(boolVal)
		if !ok {
			ic.faultf(pos, "cxl.Assert needs a boolean first argument")
		}
		t.Assert(bool(cond), ic.argStr(args, 1, name, pos), boxArgs(args[2:])...)
		return nil
	case "Fail":
		t.Fail(ic.argStr(args, 0, name, pos), boxArgs(args[1:])...)
		return nil
	case "Join":
		m, ok := args[0].(machineVal)
		if !ok {
			ic.faultf(pos, "cxl.Join needs a *cxl.Machine argument")
		}
		return []value{boolVal(t.Join(m.m))}
	case "JoinAll":
		var vs []value
		if expandEllipsis {
			s, ok := args[len(args)-1].(sliceVal)
			if !ok {
				ic.faultf(pos, "cxl.JoinAll with ... needs a slice")
			}
			vs = append(args[:len(args)-1:len(args)-1], s.elems...)
		} else {
			vs = args
		}
		targets := make([]*core.Thread, len(vs))
		for i, v := range vs {
			tv, ok := v.(threadVal)
			if !ok {
				ic.faultf(pos, "cxl.JoinAll argument %d is not a *cxl.Thread", i+1)
			}
			targets[i] = tv.t
		}
		t.JoinThreads(targets...)
		return nil
	case "Yield", "Failpoint":
		t.Yield()
		return nil
	}
	ic.faultf(pos, "unsupported cxl function %s", name)
	return nil
}

// boxArgs converts interpreter values to the Go values Assert/Fail
// format, matching what compiled code passing the same expressions
// would hand to fmt.
func boxArgs(args []value) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = goValue(a)
	}
	return out
}
