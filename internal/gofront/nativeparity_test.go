package gofront_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/gofront/cxl"
	"repro/internal/core"
	"repro/internal/gofront"
)

// The native-parity property test: a seeded generator produces small
// deterministic programs over a few shared cells and locals as an op
// IR. Each program is executed twice — natively, as compiled Go calling
// the real gofront/cxl runtime, and rendered to source and interpreted
// by the front-end under the checker. The native run's final locals and
// cell values are baked into the rendered source as cxl.Assert calls,
// so any semantic divergence between the interpreter and compiled Go
// (arithmetic, shifts, control flow, closures, the cxl ops themselves)
// is a reported assertion bug. The programs are single-machine and
// single-thread: under failure injection the thread dies before its
// asserts, so a correct interpreter yields zero bugs in every explored
// execution.

const (
	npCells = 4
	npVars  = 4
)

type npKind int

const (
	npConst npKind = iota
	npBinop
	npLoad
	npStore
	npFlush
	npFetchAdd
	npSwap
	npCAS
	npIf
	npLoop
	npClosure
)

type npStmt struct {
	kind      npKind
	d, a, b   int // local indexes
	c         int // cell index
	op        string
	lit       uint64
	body, alt []npStmt
}

// npGen generates a statement list; depth bounds nesting.
func npGen(rng *rand.Rand, n, depth int) []npStmt {
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%"}
	var out []npStmt
	for len(out) < n {
		s := npStmt{
			d: rng.Intn(npVars), a: rng.Intn(npVars), b: rng.Intn(npVars),
			c: rng.Intn(npCells),
		}
		k := rng.Intn(14)
		switch {
		case k < 2:
			s.kind = npConst
			s.lit = rng.Uint64()
		case k < 6:
			s.kind = npBinop
			s.op = ops[rng.Intn(len(ops))]
		case k < 7:
			s.kind = npLoad
		case k < 9:
			s.kind = npStore
		case k < 10:
			s.kind = npFlush
		case k < 11:
			s.kind = npFetchAdd
		case k < 12:
			switch rng.Intn(2) {
			case 0:
				s.kind = npSwap
			case 1:
				s.kind = npCAS
			}
		default:
			if depth == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				s.kind = npIf
				s.body = npGen(rng, 1+rng.Intn(3), depth-1)
				s.alt = npGen(rng, 1+rng.Intn(3), depth-1)
			case 1:
				s.kind = npLoop
				s.body = npGen(rng, 1+rng.Intn(3), depth-1)
			case 2:
				s.kind = npClosure
				s.body = npGen(rng, 1+rng.Intn(3), depth-1)
			}
		}
		out = append(out, s)
	}
	return out
}

// npExec executes the IR natively: compiled Go over the real cxl
// runtime. Every case mirrors its npRender rendering exactly.
func npExec(vars *[npVars]uint64, cells *[npCells]cxl.Ptr, stmts []npStmt) {
	for _, s := range stmts {
		switch s.kind {
		case npConst:
			vars[s.d] = s.lit
		case npBinop:
			a, b := vars[s.a], vars[s.b]
			var r uint64
			switch s.op {
			case "+":
				r = a + b
			case "-":
				r = a - b
			case "*":
				r = a * b
			case "&":
				r = a & b
			case "|":
				r = a | b
			case "^":
				r = a ^ b
			case "<<":
				r = a << (b % 64)
			case ">>":
				r = a >> (b % 64)
			case "/":
				r = a / (b | 1)
			case "%":
				r = a % (b | 1)
			}
			vars[s.d] = r
		case npLoad:
			vars[s.d] = cxl.Load64(cells[s.c])
		case npStore:
			cxl.Store64(cells[s.c], vars[s.a])
		case npFlush:
			cxl.Flush(cells[s.c])
			cxl.Fence()
		case npFetchAdd:
			vars[s.d] = cxl.FetchAdd64(cells[s.c], vars[s.a])
		case npSwap:
			vars[s.d] = cxl.Swap64(cells[s.c], vars[s.a])
		case npCAS:
			vars[s.d], _ = cxl.CAS64(cells[s.c], vars[s.a], vars[s.b])
		case npIf:
			if vars[s.a]%2 == 0 {
				npExec(vars, cells, s.body)
			} else {
				npExec(vars, cells, s.alt)
			}
		case npLoop:
			for i := uint64(0); i < vars[s.a]%3+1; i++ {
				npExec(vars, cells, s.body)
				vars[s.d] += i
			}
		case npClosure:
			func() {
				npExec(vars, cells, s.body)
			}()
		}
	}
}

// npRender renders the IR as Go statements. Every case mirrors its
// npExec execution exactly.
func npRender(w *strings.Builder, stmts []npStmt, indent string, depth int) {
	for _, s := range stmts {
		switch s.kind {
		case npConst:
			fmt.Fprintf(w, "%sv%d = %#x\n", indent, s.d, s.lit)
		case npBinop:
			switch s.op {
			case "<<", ">>":
				fmt.Fprintf(w, "%sv%d = v%d %s (v%d %% 64)\n", indent, s.d, s.a, s.op, s.b)
			case "/", "%":
				fmt.Fprintf(w, "%sv%d = v%d %s (v%d | 1)\n", indent, s.d, s.a, s.op, s.b)
			default:
				fmt.Fprintf(w, "%sv%d = v%d %s v%d\n", indent, s.d, s.a, s.op, s.b)
			}
		case npLoad:
			fmt.Fprintf(w, "%sv%d = cxl.Load64(c%d)\n", indent, s.d, s.c)
		case npStore:
			fmt.Fprintf(w, "%scxl.Store64(c%d, v%d)\n", indent, s.c, s.a)
		case npFlush:
			fmt.Fprintf(w, "%scxl.Flush(c%d)\n%scxl.Fence()\n", indent, s.c, indent)
		case npFetchAdd:
			fmt.Fprintf(w, "%sv%d = cxl.FetchAdd64(c%d, v%d)\n", indent, s.d, s.c, s.a)
		case npSwap:
			fmt.Fprintf(w, "%sv%d = cxl.Swap64(c%d, v%d)\n", indent, s.d, s.c, s.a)
		case npCAS:
			fmt.Fprintf(w, "%sv%d, _ = cxl.CAS64(c%d, v%d, v%d)\n", indent, s.d, s.c, s.a, s.b)
		case npIf:
			fmt.Fprintf(w, "%sif v%d%%2 == 0 {\n", indent, s.a)
			npRender(w, s.body, indent+"\t", depth)
			fmt.Fprintf(w, "%s} else {\n", indent)
			npRender(w, s.alt, indent+"\t", depth)
			fmt.Fprintf(w, "%s}\n", indent)
		case npLoop:
			fmt.Fprintf(w, "%sfor i%d := uint64(0); i%d < v%d%%3+1; i%d++ {\n", indent, depth, depth, s.a, depth)
			npRender(w, s.body, indent+"\t", depth+1)
			fmt.Fprintf(w, "%s\tv%d += i%d\n", indent, s.d, depth)
			fmt.Fprintf(w, "%s}\n", indent)
		case npClosure:
			fmt.Fprintf(w, "%sfunc() {\n", indent)
			npRender(w, s.body, indent+"\t", depth)
			fmt.Fprintf(w, "%s}()\n", indent)
		}
	}
}

// npSource renders the full checked program: allocations, the seeded
// locals, the generated body, and asserts pinning every local and cell
// to the native run's final values.
func npSource(stmts []npStmt, init [npVars]uint64, finalVars [npVars]uint64, finalCells [npCells]uint64) string {
	var w strings.Builder
	w.WriteString("package main\n\nimport \"cxl\"\n\nfunc Program(r *cxl.Region) {\n")
	for i := 0; i < npCells; i++ {
		fmt.Fprintf(&w, "\tc%d := r.AllocAligned(8, 64)\n", i)
	}
	w.WriteString("\tm := r.NewMachine(\"m0\")\n")
	w.WriteString("\tm.Spawn(\"t0\", func() {\n")
	for i := 0; i < npVars; i++ {
		fmt.Fprintf(&w, "\t\tv%d := uint64(%#x)\n", i, init[i])
	}
	npRender(&w, stmts, "\t\t", 0)
	for i := 0; i < npVars; i++ {
		fmt.Fprintf(&w, "\t\tcxl.Assert(v%d == %#x, \"v%d = %%#x, want %#x\", v%d)\n",
			i, finalVars[i], i, finalVars[i], i)
	}
	for i := 0; i < npCells; i++ {
		fmt.Fprintf(&w, "\t\tcxl.Assert(cxl.Load64(c%d) == %#x, \"c%d = %%#x, want %#x\", cxl.Load64(c%d))\n",
			i, finalCells[i], i, finalCells[i], i)
	}
	w.WriteString("\t})\n}\n")
	return w.String()
}

// TestNativeInterpreterParity is the property test: for many seeds,
// the interpreted program must reach exactly the final state the
// native runtime computed.
func TestNativeInterpreterParity(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		stmts := npGen(rng, 8+rng.Intn(10), 2)
		var init [npVars]uint64
		for i := range init {
			init[i] = rng.Uint64()
		}

		// Native leg: compiled Go against the real cxl runtime.
		var finalVars [npVars]uint64
		var cellAddrs [npCells]cxl.Ptr
		region := cxl.RunNative(func(r *cxl.Region) {
			for i := range cellAddrs {
				cellAddrs[i] = r.AllocAligned(8, 64)
			}
			m := r.NewMachine("m0")
			m.Spawn("t0", func() {
				vars := init
				npExec(&vars, &cellAddrs, stmts)
				finalVars = vars
			})
		})
		var finalCells [npCells]uint64
		for i, p := range cellAddrs {
			finalCells[i] = region.Peek64(p)
		}

		// Interpreted leg: the same program from source, with the native
		// final state pinned by asserts, explored under failure injection.
		src := npSource(stmts, init, finalVars, finalCells)
		s, err := gofront.Load("gen.go", []byte(src))
		if err != nil {
			t.Fatalf("seed %d: Load: %v\nsource:\n%s", seed, err, src)
		}
		prog, err := s.Program("Program")
		if err != nil {
			t.Fatalf("seed %d: Program: %v", seed, err)
		}
		res, err := core.Run(core.Config{Seed: seed}, prog)
		if err != nil {
			t.Fatalf("seed %d: Run: %v\nsource:\n%s", seed, err, src)
		}
		for _, b := range res.Bugs {
			t.Errorf("seed %d: interpreter diverged from native: %s: %s\nsource:\n%s",
				seed, b.Kind, b.Message, src)
		}
		if t.Failed() {
			return
		}
	}
}
