package gofront

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/core"
)

// value is the interpreter's runtime value: one of the concrete types
// below. Numbers carry their Go basic kind so sized-integer truncation,
// signedness and formatting match compiled Go exactly; slices are host
// Go slices of values, so header copying, aliasing and append growth
// follow Go's own semantics for free.
type value any

type (
	boolVal bool
	strVal  string

	// num is an integer value of a specific basic kind, stored as its
	// two's-complement bit pattern zero-extended to 64 bits (always
	// masked to the kind's width).
	num struct {
		bits uint64
		kind types.BasicKind
	}

	// sliceVal wraps a host slice of values: copying a sliceVal copies
	// the header (sharing the backing array), exactly like Go.
	sliceVal struct {
		elems []value
		elem  types.Type
	}

	// structVal is a struct instance; structs are pointer-shaped in the
	// subset (created by &T{...}), so *structVal is the value.
	structVal struct {
		typeName string
		fields   map[string]*value
	}

	// funcVal is a function or method value: a declaration or a literal
	// plus its captured environment and (for methods) bound receiver.
	funcVal struct {
		decl    *ast.FuncDecl
		lit     *ast.FuncLit
		env     *scope
		recv    value
		hasRecv bool
	}

	// nilVal is the untyped nil (usable where the subset allows nil:
	// slice/pointer comparisons and zero values).
	nilVal struct{}

	// API object wrappers.
	regionVal  struct{}
	machineVal struct{ m *core.Machine }
	threadVal  struct{ t *core.Thread }
	mutexVal   struct{ mu *core.Mutex }
)

// scope is one lexical environment frame: a parent chain of
// object→cell bindings, keyed by the go/types object so shadowing
// resolves exactly as the type checker decided. Cells are pointers so
// closures share mutations with their defining frame; per-iteration
// loop variables get a fresh cell each iteration (Go ≥1.22 semantics).
type scope struct {
	parent *scope
	vars   map[types.Object]*value
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[types.Object]*value{}}
}

func (s *scope) lookup(obj types.Object) (*value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if cell, ok := sc.vars[obj]; ok {
			return cell, true
		}
	}
	return nil, false
}

func (s *scope) define(obj types.Object, v value) *value {
	cell := new(value)
	*cell = v
	if obj != nil && obj.Name() != "_" {
		s.vars[obj] = cell
	}
	return cell
}

// basicKindOf resolves a type to its underlying basic kind, seeing
// through named types (cxl.Ptr → uint64).
func basicKindOf(t types.Type) (types.BasicKind, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0, false
	}
	k := b.Kind()
	switch k {
	case types.UntypedInt:
		k = types.Int
	case types.UntypedBool:
		k = types.Bool
	case types.UntypedString:
		k = types.String
	case types.UntypedRune:
		k = types.Int32
	}
	return k, true
}

// kindWidth returns the bit width of an integer kind. The model is
// 64-bit: int, uint and uintptr are 8 bytes, matching the platforms the
// checker runs on and the hand-ported benchmarks assume.
func kindWidth(k types.BasicKind) uint {
	switch k {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

func kindSigned(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64:
		return true
	}
	return false
}

func isIntegerKind(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// truncate masks bits to the kind's width (two's complement: the sign
// interpretation happens at use).
func truncate(bits uint64, k types.BasicKind) uint64 {
	w := kindWidth(k)
	if w == 64 {
		return bits
	}
	return bits & (1<<w - 1)
}

// signedOf interprets a num's bit pattern as its signed value.
func (n num) signed() int64 {
	w := kindWidth(n.kind)
	if w == 64 {
		return int64(n.bits)
	}
	shift := 64 - w
	return int64(n.bits<<shift) >> shift
}

func makeNum(bits uint64, k types.BasicKind) num {
	return num{bits: truncate(bits, k), kind: k}
}

// goValue boxes a value as the Go value of its own type, so fmt
// formatting of Assert/Fail arguments matches what compiled code
// passing the same expression would print.
func goValue(v value) any {
	switch x := v.(type) {
	case boolVal:
		return bool(x)
	case strVal:
		return string(x)
	case num:
		switch x.kind {
		case types.Int:
			return int(x.signed())
		case types.Int8:
			return int8(x.signed())
		case types.Int16:
			return int16(x.signed())
		case types.Int32:
			return int32(x.signed())
		case types.Int64:
			return x.signed()
		case types.Uint:
			return uint(x.bits)
		case types.Uint8:
			return uint8(x.bits)
		case types.Uint16:
			return uint16(x.bits)
		case types.Uint32:
			return uint32(x.bits)
		case types.Uintptr:
			return uintptr(x.bits)
		default:
			return x.bits
		}
	case nilVal:
		return nil
	default:
		return fmt.Sprintf("%T", v)
	}
}

// constValue converts a go/types constant into a runtime value of the
// expression's resolved type.
func constValue(cv constant.Value, t types.Type) (value, bool) {
	k, ok := basicKindOf(t)
	if !ok {
		return nil, false
	}
	switch cv.Kind() {
	case constant.Bool:
		return boolVal(constant.BoolVal(cv)), true
	case constant.String:
		return strVal(constant.StringVal(cv)), true
	case constant.Int:
		if kindSigned(k) {
			i, exact := constant.Int64Val(cv)
			if !exact {
				return nil, false
			}
			return makeNum(uint64(i), k), true
		}
		u, exact := constant.Uint64Val(cv)
		if !exact {
			// A negative constant converted to an unsigned kind (legal
			// in shifts of constants); fall back through int64.
			i, exact2 := constant.Int64Val(cv)
			if !exact2 {
				return nil, false
			}
			return makeNum(uint64(i), k), true
		}
		return makeNum(u, k), true
	}
	return nil, false
}

// zeroValue builds the zero value of t, for make([]T, n) and var decls.
func zeroValue(t types.Type) (value, bool) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		k, _ := basicKindOf(t)
		switch {
		case k == types.Bool:
			return boolVal(false), true
		case k == types.String:
			return strVal(""), true
		case isIntegerKind(k):
			return makeNum(0, k), true
		}
	case *types.Slice:
		return sliceVal{elems: nil, elem: u.Elem()}, true
	case *types.Pointer, *types.Signature:
		return nilVal{}, true
	}
	return nil, false
}

// arith applies a binary arithmetic/bitwise operator to two nums of the
// same kind, with Go's exact wraparound semantics. Division by zero is
// reported by the caller (ok=false).
func arith(op token.Token, x, y num) (num, bool) {
	k := x.kind
	signed := kindSigned(k)
	var bits uint64
	switch op {
	case token.ADD:
		bits = x.bits + y.bits
	case token.SUB:
		bits = x.bits - y.bits
	case token.MUL:
		bits = x.bits * y.bits
	case token.QUO:
		if y.bits == 0 {
			return num{}, false
		}
		if signed {
			bits = uint64(x.signed() / y.signed())
		} else {
			bits = x.bits / y.bits
		}
	case token.REM:
		if y.bits == 0 {
			return num{}, false
		}
		if signed {
			bits = uint64(x.signed() % y.signed())
		} else {
			bits = x.bits % y.bits
		}
	case token.AND:
		bits = x.bits & y.bits
	case token.OR:
		bits = x.bits | y.bits
	case token.XOR:
		bits = x.bits ^ y.bits
	case token.AND_NOT:
		bits = x.bits &^ y.bits
	default:
		return num{}, false
	}
	return makeNum(bits, k), true
}

// shift applies << or >> with Go's runtime semantics: negative counts
// are a fault (ok=false), counts at or beyond the width shift out to
// 0 (or to the sign for signed >>).
func shift(op token.Token, x num, count num) (num, bool) {
	if kindSigned(count.kind) && count.signed() < 0 {
		return num{}, false
	}
	c := count.bits
	w := uint64(kindWidth(x.kind))
	switch op {
	case token.SHL:
		if c >= w {
			return makeNum(0, x.kind), true
		}
		return makeNum(x.bits<<c, x.kind), true
	case token.SHR:
		if kindSigned(x.kind) {
			if c >= w {
				c = w - 1
			}
			return makeNum(uint64(x.signed()>>c), x.kind), true
		}
		if c >= w {
			return makeNum(0, x.kind), true
		}
		return makeNum(x.bits>>c, x.kind), true
	}
	return num{}, false
}

// compare applies a comparison operator to two nums of the same kind.
func compare(op token.Token, x, y num) (bool, bool) {
	var lt, eq bool
	if kindSigned(x.kind) {
		lt, eq = x.signed() < y.signed(), x.bits == y.bits
	} else {
		lt, eq = x.bits < y.bits, x.bits == y.bits
	}
	switch op {
	case token.EQL:
		return eq, true
	case token.NEQ:
		return !eq, true
	case token.LSS:
		return lt, true
	case token.LEQ:
		return lt || eq, true
	case token.GTR:
		return !lt && !eq, true
	case token.GEQ:
		return !lt, true
	}
	return false, false
}

// equalValues implements == on the non-numeric comparable subset
// (bools, strings, API handles, nil against pointer-shaped values).
func equalValues(x, y value) (bool, bool) {
	switch a := x.(type) {
	case boolVal:
		b, ok := y.(boolVal)
		return a == b, ok
	case strVal:
		b, ok := y.(strVal)
		return a == b, ok
	case threadVal:
		b, ok := y.(threadVal)
		return a.t == b.t, ok
	case machineVal:
		b, ok := y.(machineVal)
		return a.m == b.m, ok
	case mutexVal:
		b, ok := y.(mutexVal)
		return a.mu == b.mu, ok
	case *structVal:
		if _, isNil := y.(nilVal); isNil {
			return a == nil, true
		}
		b, ok := y.(*structVal)
		return a == b, ok
	case nilVal:
		switch b := y.(type) {
		case nilVal:
			return true, true
		case *structVal:
			return b == nil, true
		case sliceVal:
			return b.elems == nil, true
		case funcVal:
			return false, true
		}
	case sliceVal:
		if _, isNil := y.(nilVal); isNil {
			return a.elems == nil, true
		}
	}
	return false, false
}
