package gofront_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gofront"
	"repro/internal/recipe"
	"repro/internal/recipe/cceh"
)

// loadExampleCCEH loads examples/src/cceh.go through the front-end and
// returns its checker program.
func loadExampleCCEH(t *testing.T) func(*core.Program) {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "src", "cceh.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	s, err := gofront.Load(path, src)
	if err != nil {
		t.Fatalf("Load(%s): %v", path, err)
	}
	prog, err := s.Program("Program")
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return prog
}

// handPortedCCEH is the same workload built from the hand-ported
// benchmark: CCEH with the seeded constructor-segment-flush bug under
// the default Table 5 driver (10 keys, 2 machines, 1 worker each).
func handPortedCCEH() func(*core.Program) {
	return recipe.Program(cceh.Benchmark, recipe.Config{Bugs: cceh.BugCtorSegmentFlush})
}

// bugSet reduces a result to a sorted, comparable (kind, message) set.
func bugSet(res *core.Result) []string {
	var out []string
	for _, b := range res.Bugs {
		out = append(out, fmt.Sprintf("[%s] %s (machine %s, thread %s)", b.Kind, b.Message, b.Machine, b.Thread))
	}
	sort.Strings(out)
	return out
}

// TestSourceCCEHParity is the tentpole acceptance check: the
// source-loaded CCEH must report exactly the bug set of the hand-ported
// benchmark, with the same execution count, and its repro tokens must
// replay — against the source program AND against the hand-ported one
// (the two share a program digest because their setup streams are
// identical). Run serial and with Workers:4 to cover the parallel
// engine.
func TestSourceCCEHParity(t *testing.T) {
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			cfg := core.Config{Seed: 1, Workers: workers}

			srcProg := loadExampleCCEH(t)
			handProg := handPortedCCEH()

			srcRes, err := core.Run(cfg, srcProg)
			if err != nil {
				t.Fatalf("Run(source): %v", err)
			}
			handRes, err := core.Run(cfg, handProg)
			if err != nil {
				t.Fatalf("Run(hand-ported): %v", err)
			}

			if len(srcRes.Bugs) == 0 {
				t.Fatalf("source-loaded CCEH found no bugs; seeded bug #1 should surface")
			}
			if got, want := bugSet(srcRes), bugSet(handRes); !reflect.DeepEqual(got, want) {
				t.Errorf("bug set mismatch:\n  source:      %v\n  hand-ported: %v", got, want)
			}
			if srcRes.Stats.Executions != handRes.Stats.Executions {
				t.Errorf("execution count mismatch: source %d, hand-ported %d",
					srcRes.Stats.Executions, handRes.Stats.Executions)
			}

			// Tokens replay against the program they came from...
			for _, b := range srcRes.Bugs[:1] {
				rres, err := core.Replay(b.ReproToken, cfg, srcProg)
				if err != nil {
					t.Fatalf("Replay(source token, source program): %v", err)
				}
				if !containsBug(rres, b) {
					t.Errorf("source token replay did not reproduce %s", b.Message)
				}
			}
			// ...and cross-replay against the other implementation: the
			// setup streams are identical, so the program digests agree.
			for _, b := range handRes.Bugs[:1] {
				rres, err := core.Replay(b.ReproToken, cfg, srcProg)
				if err != nil {
					t.Fatalf("Replay(hand-ported token, source program): %v", err)
				}
				if !containsBug(rres, b) {
					t.Errorf("cross-replay (hand token on source program) did not reproduce %s", b.Message)
				}
			}
			for _, b := range srcRes.Bugs[:1] {
				rres, err := core.Replay(b.ReproToken, cfg, handProg)
				if err != nil {
					t.Fatalf("Replay(source token, hand-ported program): %v", err)
				}
				if !containsBug(rres, b) {
					t.Errorf("cross-replay (source token on hand program) did not reproduce %s", b.Message)
				}
			}
		})
	}
}

func containsBug(res *core.Result, want core.Bug) bool {
	for _, b := range res.Bugs {
		if b.Kind == want.Kind && b.Message == want.Message {
			return true
		}
	}
	return false
}
