package gofront

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
)

// apiSrc is the declarations-only mirror of the public gofront/cxl
// package, used to type-check user source without compiled export data:
// the synthetic importer type-checks this string once and hands the
// resulting *types.Package to every Load. Function bodies are omitted
// (bodyless package-level functions are legal Go); the drift test in
// api_test.go asserts this surface stays a subset of the real package
// with identical signatures.
const apiSrc = `package cxl

type Ptr uint64

type Region struct{ _ int }

func (r *Region) Alloc(size uint64) Ptr
func (r *Region) AllocAligned(size, align uint64) Ptr
func (r *Region) Init64(p Ptr, v uint64)
func (r *Region) NewMachine(name string) *Machine
func (r *Region) NewMutex(name string) *Mutex

type Machine struct{ _ int }

func (m *Machine) Spawn(name string, fn func()) *Thread

type Thread struct{ _ int }

type Mutex struct{ _ int }

func (mu *Mutex) Lock() bool
func (mu *Mutex) TryLock() (acquired, ownerFailed bool)
func (mu *Mutex) Unlock()
func (mu *Mutex) OwnerFailed() bool

func Load8(p Ptr) uint8
func Load16(p Ptr) uint16
func Load32(p Ptr) uint32
func Load64(p Ptr) uint64
func Store8(p Ptr, v uint8)
func Store16(p Ptr, v uint16)
func Store32(p Ptr, v uint32)
func Store64(p Ptr, v uint64)
func Flush(p Ptr)
func FlushOpt(p Ptr)
func CLWB(p Ptr)
func Fence()
func MFence()
func CAS64(p Ptr, old, new uint64) (prev uint64, swapped bool)
func CAS32(p Ptr, old, new uint32) (prev uint32, swapped bool)
func Swap64(p Ptr, v uint64) (prev uint64)
func FetchAdd64(p Ptr, delta uint64) (prev uint64)
func FetchAdd32(p Ptr, delta uint32) (prev uint32)
func Alloc(size uint64) Ptr
func AllocAligned(size, align uint64) Ptr
func Assert(cond bool, format string, args ...any)
func Fail(format string, args ...any)
func Join(m *Machine) (failedMachine bool)
func JoinAll(ts ...*Thread)
func Yield()
func Failpoint(name string)
func RunNative(program func(*Region)) *Region
`

// cxlImportPaths are the import paths the synthetic importer resolves
// to the cxl API package: the bare form for standalone files and the
// module-qualified form that makes example files buildable by the
// ordinary Go toolchain.
var cxlImportPaths = map[string]bool{
	"cxl":               true,
	"repro/gofront/cxl": true,
}

var (
	apiOnce sync.Once
	apiPkg  *types.Package
	apiErr  error
)

// cxlAPI type-checks apiSrc once and returns the synthetic cxl package.
func cxlAPI() (*types.Package, error) {
	apiOnce.Do(func() {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "cxl.go", apiSrc, parser.SkipObjectResolution)
		if err != nil {
			apiErr = err
			return
		}
		conf := types.Config{}
		apiPkg, apiErr = conf.Check("cxl", fset, []*ast.File{f}, nil)
	})
	return apiPkg, apiErr
}

// synthImporter resolves the cxl import (under either path) to the
// synthetic API package and rejects everything else: checked programs
// import only cxl.
type synthImporter struct{}

func (synthImporter) Import(path string) (*types.Package, error) {
	if cxlImportPaths[path] {
		return cxlAPI()
	}
	return nil, &unsupportedImportError{path: path}
}

type unsupportedImportError struct{ path string }

func (e *unsupportedImportError) Error() string {
	return `checked programs may only import "cxl" (or "repro/gofront/cxl"); cannot import "` + e.path + `"`
}
