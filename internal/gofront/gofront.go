// Package gofront is the native Go source front-end: it loads an
// ordinary Go file written against the gofront/cxl API, type-checks it
// with a synthetic importer (no compiled export data, no external
// dependencies — go/parser + go/types only), and interprets the checked
// functions with an AST-walking interpreter whose loads, stores,
// atomics, flushes and locks lower directly to core.Thread events. The
// checker's machinery — state-space reduction, prefix-fork replay, the
// race detector, repro tokens, Replay — works unchanged on
// source-loaded programs, because by the time the engine sees them they
// are just another func(*core.Program).
//
// The supported subset is deliberately small and fully diagnosed:
// anything outside it is reported as a positioned file:line error at
// load time (statically detectable constructs) or as a positioned
// fault when reached (dynamic errors), never as a bare panic.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// maxDiagnostics caps how many load-time diagnostics one Load reports:
// enough to fix a file in one round, not a wall of follow-on errors.
const maxDiagnostics = 10

// Diagnostic is one positioned front-end error.
type Diagnostic struct {
	Pos token.Position
	Msg string
}

func (d Diagnostic) Error() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
	}
	return d.Msg
}

// DiagnosticList is the error type Load returns: every positioned
// problem found in the file, stably ordered by position.
type DiagnosticList []Diagnostic

func (l DiagnosticList) Error() string {
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// methodKey identifies a method declaration by receiver type name and
// method name.
type methodKey struct {
	typeName string
	method   string
}

// Source is one loaded, type-checked source file, ready to be turned
// into checker programs.
type Source struct {
	Filename string

	fset    *token.FileSet
	file    *ast.File
	pkg     *types.Package
	info    *types.Info
	cxlPkg  *types.Package
	funcs   map[string]*ast.FuncDecl
	methods map[methodKey]*ast.FuncDecl
}

// Load parses and type-checks one Go source file against the synthetic
// cxl API and subset-checks every function in it (except main, which is
// native-only glue and never interpreted). A nil error means every
// declared function is interpretable.
func Load(filename string, src []byte) (*Source, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, parseDiagnostics(fset, err)
	}

	cxlPkg, err := cxlAPI()
	if err != nil {
		return nil, fmt.Errorf("gofront: internal cxl API is broken: %v", err)
	}

	var diags DiagnosticList
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: synthImporter{},
		Error: func(err error) {
			te, ok := err.(types.Error)
			if !ok {
				diags = append(diags, Diagnostic{Msg: err.Error()})
				return
			}
			if te.Soft || len(diags) >= maxDiagnostics {
				return
			}
			diags = append(diags, Diagnostic{Pos: fset.Position(te.Pos), Msg: te.Msg})
		},
	}
	pkg, _ := conf.Check(file.Name.Name, fset, []*ast.File{file}, info)
	if len(diags) > 0 {
		return nil, diags
	}

	s := &Source{
		Filename: filename,
		fset:     fset,
		file:     file,
		pkg:      pkg,
		info:     info,
		cxlPkg:   cxlPkg,
		funcs:    map[string]*ast.FuncDecl{},
		methods:  map[methodKey]*ast.FuncDecl{},
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Recv == nil {
			s.funcs[fd.Name.Name] = fd
			continue
		}
		if name, ok := recvTypeName(fd.Recv); ok {
			s.methods[methodKey{typeName: name, method: fd.Name.Name}] = fd
		}
	}

	if diags := s.subsetCheck(); len(diags) > 0 {
		return nil, diags
	}
	return s, nil
}

// parseDiagnostics converts parser errors (a scanner.ErrorList) into a
// DiagnosticList.
func parseDiagnostics(fset *token.FileSet, err error) error {
	el, ok := err.(scanner.ErrorList)
	if !ok {
		return DiagnosticList{{Msg: err.Error()}}
	}
	var diags DiagnosticList
	for i, e := range el {
		if i >= maxDiagnostics {
			break
		}
		diags = append(diags, Diagnostic{Pos: e.Pos, Msg: e.Msg})
	}
	return diags
}

// recvTypeName extracts the named type of a method receiver (*T or T).
func recvTypeName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) != 1 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// Entries returns the names of functions usable as -entry: package-level
// functions taking exactly one *cxl.Region parameter and returning
// nothing.
func (s *Source) Entries() []string {
	var out []string
	for name, fd := range s.funcs {
		if s.entrySignatureOK(fd) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (s *Source) entrySignatureOK(fd *ast.FuncDecl) bool {
	obj, ok := s.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() == s.cxlPkg && named.Obj().Name() == "Region"
}

// Program returns the checker program for entry (a function with
// signature func(*cxl.Region)). The returned func is safe to run many
// times and from many exploration workers: every call builds fresh
// interpreter state.
func (s *Source) Program(entry string) (func(*core.Program), error) {
	return s.program(entry, nil)
}

// VetProgram is Program plus a SiteMap: while the program runs, the
// interpreter records the source position of the first store and the
// first flush touching each cache line and of every mutex creation, so
// cxlvet findings can be annotated with real file:line positions.
func (s *Source) VetProgram(entry string) (func(*core.Program), *SiteMap, error) {
	sm := newSiteMap(s.fset)
	prog, err := s.program(entry, sm)
	return prog, sm, err
}

func (s *Source) program(entry string, sites *SiteMap) (func(*core.Program), error) {
	fd, ok := s.funcs[entry]
	if !ok {
		return nil, fmt.Errorf("gofront: %s has no function %q (entry candidates: %s)",
			s.Filename, entry, strings.Join(s.Entries(), ", "))
	}
	if !s.entrySignatureOK(fd) {
		return nil, DiagnosticList{{
			Pos: s.fset.Position(fd.Pos()),
			Msg: fmt.Sprintf("entry function %s must have signature func(*cxl.Region)", entry),
		}}
	}
	return func(p *core.Program) {
		ec := &execCtx{src: s, prog: p, sites: sites}
		ic := &interp{ec: ec, t: nil}
		ic.invoke(funcVal{decl: fd}, []value{regionVal{}}, fd.Pos())
	}, nil
}

// SiteMap maps checker-level artifacts (cache lines, mutex names) back
// to source positions, populated during a vet dry run. Guarded by a
// mutex because programDigestOf runs the program's setup once more on
// the side; first occurrence wins so the map reflects the dry run.
type SiteMap struct {
	fset *token.FileSet

	mu      sync.Mutex
	storeAt map[uint64]token.Position
	flushAt map[uint64]token.Position
	mutexAt map[string]token.Position
}

func newSiteMap(fset *token.FileSet) *SiteMap {
	return &SiteMap{
		fset:    fset,
		storeAt: map[uint64]token.Position{},
		flushAt: map[uint64]token.Position{},
		mutexAt: map[string]token.Position{},
	}
}

func (sm *SiteMap) recordStore(addr core.Addr, pos token.Pos) {
	if sm == nil {
		return
	}
	line := uint64(memmodel.LineOf(addr))
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, ok := sm.storeAt[line]; !ok {
		sm.storeAt[line] = sm.fset.Position(pos)
	}
}

func (sm *SiteMap) recordFlush(addr core.Addr, pos token.Pos) {
	if sm == nil {
		return
	}
	line := uint64(memmodel.LineOf(addr))
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, ok := sm.flushAt[line]; !ok {
		sm.flushAt[line] = sm.fset.Position(pos)
	}
}

func (sm *SiteMap) recordMutex(name string, pos token.Pos) {
	if sm == nil {
		return
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if _, ok := sm.mutexAt[name]; !ok {
		sm.mutexAt[name] = sm.fset.Position(pos)
	}
}

// Annotate rewrites the report's finding messages with source
// positions: store sites for unflushed-publish lines, flush sites for
// dead failure points, creation sites for the mutexes named by
// lock-order findings. The report's structure (kinds, lines,
// FlaggedLines) is untouched, so the -race-detect arming path stays
// digest-identical to the hand-ported flow.
func (sm *SiteMap) Annotate(rep *analyze.Report) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for i := range rep.Findings {
		f := &rep.Findings[i]
		switch f.Kind {
		case analyze.UnflushedPublish:
			if pos, ok := sm.storeAt[f.Line]; ok {
				f.Message += fmt.Sprintf(" [stored at %s]", trimPos(pos))
			}
		case analyze.DeadFailurePoint:
			if pos, ok := sm.flushAt[f.Line]; ok {
				f.Message += fmt.Sprintf(" [flushed at %s]", trimPos(pos))
			}
		case analyze.LockOrderCycle:
			var names []string
			for name := range sm.mutexAt {
				if strings.Contains(f.Message, name) {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			var sites []string
			for _, name := range names {
				sites = append(sites, fmt.Sprintf("%s at %s", name, trimPos(sm.mutexAt[name])))
			}
			if len(sites) > 0 {
				f.Message += fmt.Sprintf(" [%s]", strings.Join(sites, ", "))
			}
		}
	}
}

// trimPos renders a position as file:line (dropping the column: the
// line is what a human greps for, and column drift would churn goldens).
func trimPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// pos formats a token.Pos for diagnostics.
func (s *Source) pos(p token.Pos) token.Position { return s.fset.Position(p) }

// faultf panics with a positioned runtime fault. During setup the
// checker converts it into a setup error; on a simulated thread it
// becomes a BugPanic with the position in the message.
func (s *Source) faultf(p token.Pos, format string, args ...any) {
	panic(Diagnostic{Pos: s.pos(p), Msg: fmt.Sprintf(format, args...)})
}
