// Package chaos implements a deterministic, seed-driven fault injector
// for exercising the checker's own resilience machinery. The injector is
// threaded behind the engine's checkpoint/spill filesystem calls and the
// worker loop: it can fail reads, writes, syncs and renames (transiently
// or permanently), truncate writes, flip bits in read data, stall workers
// and provoke spurious wakeups and checkpoint barriers.
//
// Faults are drawn from a seeded RNG behind a mutex, so a single-worker
// run consumes faults in a reproducible order: the same seed yields the
// same fault pattern. With several workers the per-site decisions are
// still seed-derived, but which operation draws which decision depends on
// goroutine interleaving. A fault budget (MaxFaults) bounds the total
// injected faults so chaotic runs always terminate: once the budget is
// spent the injector goes quiet and the run proceeds fault-free.
//
// The package deliberately knows nothing about the checker; internal/core
// consults a *Injector through nil-safe methods, so a nil injector is the
// zero-cost "chaos off" mode.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Config selects the fault mix. All percentages are 0–100 chances per
// opportunity; zero disables that fault class.
type Config struct {
	// Seed drives the fault pattern. Two injectors with the same Config
	// produce the same decision sequence.
	Seed int64

	// ReadErrPct fails a checkpoint/spill file read.
	ReadErrPct int
	// WriteErrPct fails a checkpoint/spill file write.
	WriteErrPct int
	// SyncErrPct fails the fsync of a checkpoint temp file.
	SyncErrPct int
	// RenameErrPct fails the atomic rename installing a checkpoint.
	RenameErrPct int
	// ShortWritePct turns an injected write fault into a torn write: a
	// prefix of the data reaches the file before the error surfaces.
	ShortWritePct int
	// CorruptPct flips one bit in data read back from disk, simulating
	// on-media corruption; the decoder must reject it, never crash.
	CorruptPct int

	// StallPct makes a worker sleep StallDur at an execution boundary,
	// perturbing the work-stealing and barrier schedules.
	StallPct int
	// StallDur is the stall length; 0 means a default of 1ms.
	StallDur time.Duration

	// Network fault classes, consulted by the distributed transport
	// (repro/internal/dist). NetDropPct makes a call vanish without a
	// response, as if the packet was lost; the transport's bounded retry
	// must absorb it.
	NetDropPct int
	// NetDelayPct delays a call by NetDelayDur before it is sent,
	// modelling a slow or congested link.
	NetDelayPct int
	// NetDelayDur is the injected network delay; 0 means a default of 5ms.
	NetDelayDur time.Duration
	// NetDupPct delivers a call twice, exercising the coordinator's
	// request idempotency (a duplicated lease, completion or donation
	// must not double its effect).
	NetDupPct int
	// Net5xxPct makes the coordinator answer a call with a retryable
	// 5xx error instead of processing it.
	Net5xxPct int
	// NetPartitionPct opens a network partition window of NetPartitionDur
	// during which every call fails, modelling a coordinator that is
	// briefly unreachable; workers must degrade to local draining and
	// reconnect when the window closes.
	NetPartitionPct int
	// NetPartitionDur is the partition window length; 0 means a default
	// of 100ms.
	NetPartitionDur time.Duration
	// SpuriousWakePct broadcasts the engine's condition variable for no
	// reason, exercising every wait loop's recheck path.
	SpuriousWakePct int
	// SpuriousBarrierPct arms a checkpoint round that no cadence asked
	// for, exercising the stop-the-world barrier off-schedule.
	SpuriousBarrierPct int

	// Permanent, when non-nil, makes every injected I/O fault permanent
	// (non-retryable) and wraps this error — e.g. syscall.ENOSPC to
	// emulate a full disk, or syscall.EACCES for a permission wall. When
	// nil, injected I/O faults are transient and retryable.
	Permanent error

	// MaxFaults bounds the total number of injected faults (stalls and
	// spurious events included); 0 means unlimited. A bounded budget
	// guarantees chaotic runs terminate: the injector goes quiet once it
	// is spent.
	MaxFaults int

	// OnFault, when non-nil, is invoked after every injected fault with a
	// short class label ("read", "write", "short-write", "sync", "rename",
	// "corrupt", "stall", "wake", "barrier"). It is called with the
	// injector's lock held: the callback must be fast and must not call
	// back into the injector. internal/core wires the observability
	// subsystem here (see also SetOnFault).
	OnFault func(class string)
}

// Stats counts injected faults by class.
type Stats struct {
	Reads, Writes, Syncs, Renames int
	ShortWrites, Corruptions      int
	Stalls, Wakes, Barriers       int
	// Network fault classes (distributed transport).
	NetDrops, NetDelays, NetDups int
	Net5xxs, NetPartitions       int
}

// Total returns the total number of injected faults.
func (s Stats) Total() int {
	return s.Reads + s.Writes + s.Syncs + s.Renames + s.Corruptions +
		s.Stalls + s.Wakes + s.Barriers +
		s.NetDrops + s.NetDelays + s.NetDups + s.Net5xxs + s.NetPartitions
}

// Injector draws faults deterministically from a seeded RNG. Methods are
// safe for concurrent use and safe on a nil receiver (no faults).
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	spent int
	stats Stats
	// partUntil is the end of the currently open network partition
	// window; zero when no partition is active.
	partUntil time.Time
}

// New returns an injector for the given fault mix.
func New(cfg Config) *Injector {
	if cfg.StallDur == 0 {
		cfg.StallDur = time.Millisecond
	}
	if cfg.NetDelayDur == 0 {
		cfg.NetDelayDur = 5 * time.Millisecond
	}
	if cfg.NetPartitionDur == 0 {
		cfg.NetPartitionDur = 100 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// injectedError is the error type of every injected I/O fault.
type injectedError struct {
	op        string
	permanent error // nil for transient faults
}

func (e *injectedError) Error() string {
	if e.permanent != nil {
		return fmt.Sprintf("chaos: injected permanent %s fault: %v", e.op, e.permanent)
	}
	return fmt.Sprintf("chaos: injected transient %s fault", e.op)
}

// Unwrap exposes the wrapped permanent error, so errors.Is(err,
// syscall.ENOSPC) works on an injected disk-full fault.
func (e *injectedError) Unwrap() error { return e.permanent }

// IsTransient reports whether err is (or wraps) an injected transient
// fault — the class a bounded retry is allowed to absorb.
func IsTransient(err error) bool {
	var ie *injectedError
	return errors.As(err, &ie) && ie.permanent == nil
}

// IsInjected reports whether err is (or wraps) any injected fault.
func IsInjected(err error) bool {
	var ie *injectedError
	return errors.As(err, &ie)
}

// hit consumes one fault from the budget if the seeded dice land under
// pct. It is the single point every fault class funnels through.
func (in *Injector) hit(pct int) bool {
	if pct <= 0 {
		return false
	}
	if in.cfg.MaxFaults > 0 && in.spent >= in.cfg.MaxFaults {
		return false
	}
	if in.rng.Intn(100) >= pct {
		return false
	}
	in.spent++
	return true
}

func (in *Injector) ioErr(op string) error {
	return &injectedError{op: op, permanent: in.cfg.Permanent}
}

// note reports one delivered fault to the OnFault observer, if any.
// Called with in.mu held.
func (in *Injector) note(class string) {
	if in.cfg.OnFault != nil {
		in.cfg.OnFault(class)
	}
}

// SetOnFault installs (or, with nil, removes) the fault observer on an
// existing injector — the engine uses this to observe a caller-provided
// injector without rebuilding it. Safe on a nil receiver.
func (in *Injector) SetOnFault(f func(class string)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cfg.OnFault = f
	in.mu.Unlock()
}

// ReadFault returns an error to inject before a file read, or nil.
func (in *Injector) ReadFault() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.ReadErrPct) {
		return nil
	}
	in.stats.Reads++
	in.note("read")
	return in.ioErr("read")
}

// WriteFault decides the fate of a size-byte write. A nil error means no
// fault. A non-nil error with n < 0 means the write fails before any
// byte lands; with 0 <= n < size it means a torn write — the caller
// should write the first n bytes, then surface the error.
func (in *Injector) WriteFault(size int) (n int, err error) {
	if in == nil {
		return -1, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.WriteErrPct) {
		return -1, nil
	}
	in.stats.Writes++
	if size > 0 && in.rng.Intn(100) < in.cfg.ShortWritePct {
		in.stats.ShortWrites++
		in.note("short-write")
		return in.rng.Intn(size), in.ioErr("write")
	}
	in.note("write")
	return -1, in.ioErr("write")
}

// SyncFault returns an error to inject at an fsync, or nil.
func (in *Injector) SyncFault() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.SyncErrPct) {
		return nil
	}
	in.stats.Syncs++
	in.note("sync")
	return in.ioErr("sync")
}

// RenameFault returns an error to inject at a rename, or nil.
func (in *Injector) RenameFault() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.RenameErrPct) {
		return nil
	}
	in.stats.Renames++
	in.note("rename")
	return in.ioErr("rename")
}

// Corrupt possibly flips one bit of data in place, returning data. The
// caller owns the slice.
func (in *Injector) Corrupt(data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.CorruptPct) {
		return data
	}
	in.stats.Corruptions++
	in.note("corrupt")
	i := in.rng.Intn(len(data))
	data[i] ^= 1 << uint(in.rng.Intn(8))
	return data
}

// Stall sleeps for the configured stall duration at a worker's execution
// boundary, sometimes. Call it outside any engine lock.
func (in *Injector) Stall() {
	if in == nil {
		return
	}
	in.mu.Lock()
	stall := in.hit(in.cfg.StallPct)
	if stall {
		in.stats.Stalls++
		in.note("stall")
	}
	d := in.cfg.StallDur
	in.mu.Unlock()
	if stall {
		time.Sleep(d)
	}
}

// SpuriousWake reports whether to broadcast the engine's condition
// variable for no reason.
func (in *Injector) SpuriousWake() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.SpuriousWakePct) {
		return false
	}
	in.stats.Wakes++
	in.note("wake")
	return true
}

// SpuriousBarrier reports whether to arm an off-schedule checkpoint
// round.
func (in *Injector) SpuriousBarrier() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.SpuriousBarrierPct) {
		return false
	}
	in.stats.Barriers++
	in.note("barrier")
	return true
}

// NetDrop reports whether an outgoing call should vanish without a
// response. It also opens (and honours) network partition windows: while
// a partition is active every call is dropped, so a worker sees the
// coordinator as unreachable until the window closes. The returned error
// is transient — bounded retry is allowed to absorb it.
func (in *Injector) NetDrop() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	now := time.Now()
	if now.Before(in.partUntil) {
		return in.ioErr("net-partition")
	}
	if in.hit(in.cfg.NetPartitionPct) {
		in.stats.NetPartitions++
		in.note("net-partition")
		in.partUntil = now.Add(in.cfg.NetPartitionDur)
		return in.ioErr("net-partition")
	}
	if !in.hit(in.cfg.NetDropPct) {
		return nil
	}
	in.stats.NetDrops++
	in.note("net-drop")
	return in.ioErr("net-drop")
}

// NetDelay returns how long an outgoing call should be delayed before it
// is sent (zero for no delay). The caller sleeps; the injector never
// blocks while holding its lock.
func (in *Injector) NetDelay() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.NetDelayPct) {
		return 0
	}
	in.stats.NetDelays++
	in.note("net-delay")
	return in.cfg.NetDelayDur
}

// NetDup reports whether a call should be delivered twice, exercising
// the receiver's request idempotency.
func (in *Injector) NetDup() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.NetDupPct) {
		return false
	}
	in.stats.NetDups++
	in.note("net-dup")
	return true
}

// Net5xx reports whether the server should answer a call with a
// retryable 5xx instead of processing it.
func (in *Injector) Net5xx() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hit(in.cfg.Net5xxPct) {
		return false
	}
	in.stats.Net5xxs++
	in.note("net-5xx")
	return true
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Exhausted reports whether the fault budget is spent.
func (in *Injector) Exhausted() bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.MaxFaults > 0 && in.spent >= in.cfg.MaxFaults
}
