package chaos

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
)

// TestNilInjectorIsQuiet: every method must be a no-fault no-op on nil,
// because that is exactly how "chaos off" is wired through the engine.
func TestNilInjectorIsQuiet(t *testing.T) {
	var in *Injector
	if err := in.ReadFault(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.WriteFault(100); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncFault(); err != nil {
		t.Fatal(err)
	}
	if err := in.RenameFault(); err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3}
	if got := in.Corrupt(data); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("nil Corrupt changed data: %v", got)
	}
	in.Stall()
	if in.SpuriousWake() || in.SpuriousBarrier() {
		t.Fatal("nil injector produced spurious events")
	}
	if s := in.Stats(); s.Total() != 0 {
		t.Fatalf("nil stats: %+v", s)
	}
}

// TestDeterministicSequence: two injectors with the same config yield the
// same decisions in the same call order.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 7, WriteErrPct: 40, ReadErrPct: 40, SyncErrPct: 40, ShortWritePct: 50}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		an, aerr := a.WriteFault(64)
		bn, berr := b.WriteFault(64)
		if (aerr == nil) != (berr == nil) || an != bn {
			t.Fatalf("call %d diverged: (%d,%v) vs (%d,%v)", i, an, aerr, bn, berr)
		}
		if (a.ReadFault() == nil) != (b.ReadFault() == nil) {
			t.Fatalf("call %d read decisions diverged", i)
		}
	}
}

// TestFaultBudget: once MaxFaults faults have been injected the injector
// must go quiet, guaranteeing chaotic runs terminate.
func TestFaultBudget(t *testing.T) {
	in := New(Config{Seed: 1, WriteErrPct: 100, MaxFaults: 5})
	faults := 0
	for i := 0; i < 100; i++ {
		if _, err := in.WriteFault(10); err != nil {
			faults++
		}
	}
	if faults != 5 {
		t.Fatalf("injected %d faults with a budget of 5", faults)
	}
	if !in.Exhausted() {
		t.Fatal("budget spent but Exhausted() is false")
	}
	if s := in.Stats(); s.Writes != 5 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestTransientVsPermanent: transient faults satisfy IsTransient;
// permanent faults do not, and they expose the wrapped cause.
func TestTransientVsPermanent(t *testing.T) {
	tr := New(Config{Seed: 1, WriteErrPct: 100})
	_, err := tr.WriteFault(10)
	if err == nil || !IsTransient(err) || !IsInjected(err) {
		t.Fatalf("transient fault: %v", err)
	}

	pm := New(Config{Seed: 1, WriteErrPct: 100, Permanent: syscall.ENOSPC})
	_, err = pm.WriteFault(10)
	if err == nil || IsTransient(err) || !IsInjected(err) {
		t.Fatalf("permanent fault: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("permanent fault does not wrap ENOSPC: %v", err)
	}
	if IsTransient(errors.New("unrelated")) || IsInjected(errors.New("unrelated")) {
		t.Fatal("unrelated errors classified as injected")
	}
}

// TestShortWrite: a short-write fault reports a prefix length within the
// write's size.
func TestShortWrite(t *testing.T) {
	in := New(Config{Seed: 3, WriteErrPct: 100, ShortWritePct: 100})
	for i := 0; i < 50; i++ {
		n, err := in.WriteFault(64)
		if err == nil {
			t.Fatal("expected a fault at 100%")
		}
		if n < 0 || n >= 64 {
			t.Fatalf("short write length %d out of [0,64)", n)
		}
	}
	if s := in.Stats(); s.ShortWrites != 50 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestCorruptFlipsExactlyOneBit at 100% corruption chance.
func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: 9, CorruptPct: 100})
	orig := []byte{0x00, 0xFF, 0x55, 0xAA}
	data := append([]byte(nil), orig...)
	data = in.Corrupt(data)
	diff := 0
	for i := range orig {
		x := orig[i] ^ data[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1 (%x -> %x)", diff, orig, data)
	}
}
