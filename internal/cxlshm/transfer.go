package cxlshm

// Ownership transfer — the core protocol of the CXL-SHM system (Zhang et
// al., SOSP 2023): objects in shared memory move between machines
// without copying, and the protocol plus recovery guarantee exactly-one
// owner across arbitrary partial failures. This file models it as an
// extension benchmark beyond the paper's Table 4 cases; the checker
// proves the three-step handoff (mark transferring → publish to the
// receiver's inbox → receiver claims) crash consistent, and finds the
// bug when any step's flush is omitted.

import (
	cxlmc "repro"
)

// Object states (packed state(8) | owner+1 (8) in the header word).
const (
	objOwned        = 1
	objTransferring = 2
	objFreed        = 3
)

func packState(state uint64, owner cxlmc.MachineID) uint64 {
	return state<<8 | uint64(owner) + 1
}

func unpackState(w uint64) (state uint64, owner cxlmc.MachineID) {
	return w >> 8, cxlmc.MachineID(w&0xFF) - 1
}

// Xfer is an ownership-transfer arena: a fixed set of objects plus one
// inbox slot per machine.
type Xfer struct {
	objs    cxlmc.Addr // numObjs × 64-byte lines: [0] state word, [8] payload
	inboxes cxlmc.Addr // one 64-byte line per machine: [0] object pointer
	numObjs int
	bugs    Bug
}

// Transfer-protocol bugs (extension; not part of Table 4).
const (
	// BugXferNoTransferFlush: the sender's "transferring" mark is not
	// flushed before the inbox publication. A crashed sender can then
	// leave a durable inbox entry pointing at an object whose durable
	// state still reads "owned" — recovery misclassifies it as the dead
	// machine's private object and reclaims it out from under the
	// receiver.
	BugXferNoTransferFlush Bug = 1 << 16
)

// NewXfer lays out an arena with one inbox per machine.
func NewXfer(p *cxlmc.Program, numObjs, machines int, bugs Bug) *Xfer {
	return &Xfer{
		objs:    p.AllocAligned(uint64(numObjs)*64, 64),
		inboxes: p.AllocAligned(uint64(machines)*64, 64),
		numObjs: numObjs,
		bugs:    bugs,
	}
}

func (x *Xfer) obj(i int) cxlmc.Addr               { return x.objs + cxlmc.Addr(i*64) }
func (x *Xfer) inbox(m cxlmc.MachineID) cxlmc.Addr { return x.inboxes + cxlmc.Addr(int(m)*64) }

// Acquire claims object i for machine me with a flushed state store.
func (x *Xfer) Acquire(t *cxlmc.Thread, me cxlmc.MachineID, i int, payload uint64) {
	o := x.obj(i)
	t.Store64(o+8, payload)
	t.CLFlush(o)
	t.SFence()
	t.Store64(o, packState(objOwned, me))
	t.CLFlush(o)
	t.SFence()
}

// Send hands object i from me to the receiver: mark transferring
// (flushed — the seeded bug omits exactly this flush), then publish the
// object pointer in the receiver's inbox (flushed). The flush ordering
// is the protocol's soundness argument: a durable inbox entry implies a
// durable transferring mark, so recovery can trust the state word.
func (x *Xfer) Send(t *cxlmc.Thread, me, to cxlmc.MachineID, i int) {
	o := x.obj(i)
	t.Store64(o, packState(objTransferring, me))
	if !x.bugs.Has(BugXferNoTransferFlush) {
		t.CLFlush(o)
		t.SFence()
	}
	t.Store64(x.inbox(to), uint64(o))
	t.CLFlush(x.inbox(to))
	t.SFence()
}

// Receive claims whatever sits in me's inbox: take ownership with a
// flushed state store, then clear the inbox (flushed). Returns the
// object payload and true when something was received. Claiming an
// object that is no longer in a claimable state means the protocol's
// accounting broke — the real system's double-allocation hazard.
func (x *Xfer) Receive(t *cxlmc.Thread, me cxlmc.MachineID) (uint64, bool) {
	o := cxlmc.Addr(t.Load64(x.inbox(me)))
	if o == 0 {
		return 0, false
	}
	state, _ := unpackState(t.Load64(o))
	t.Assert(state == objTransferring,
		"cxlshm: receiving object in state %d (reclaimed or double-delivered)", state)
	t.Store64(o, packState(objOwned, me))
	t.CLFlush(o)
	t.SFence()
	t.Store64(x.inbox(me), 0)
	t.CLFlush(x.inbox(me))
	t.SFence()
	return t.Load64(o + 8), true
}

// Recover finishes or reverts transfers involving the failed machine:
// an object stuck in transferring from the failed sender is reclaimed
// (freed) unless it is visible in some inbox, in which case the
// published receiver will (or did) claim it.
func (x *Xfer) Recover(t *cxlmc.Thread, failed cxlmc.MachineID, machines int) {
	for i := 0; i < x.numObjs; i++ {
		o := x.obj(i)
		state, owner := unpackState(t.Load64(o))
		if owner != failed {
			continue
		}
		switch state {
		case objOwned:
			// The failed machine owned it outright: reclaim.
			t.Store64(o, packState(objFreed, failed))
			t.CLFlush(o)
			t.SFence()
		case objTransferring:
			published := false
			for m := 0; m < machines; m++ {
				if cxlmc.Addr(t.Load64(x.inbox(cxlmc.MachineID(m)))) == o {
					published = true
					break
				}
			}
			if !published {
				// Never published: the handoff never committed; reclaim.
				t.Store64(o, packState(objFreed, failed))
				t.CLFlush(o)
				t.SFence()
			}
			// Published: the receiver's Receive (past or future) takes
			// ownership; leave it alone.
		}
	}
}

// CheckExactlyOneOwner asserts the protocol's invariant from a surviving
// machine: every object is owned by exactly one live machine, freed, or
// still claimable through exactly one inbox.
func (x *Xfer) CheckExactlyOneOwner(t *cxlmc.Thread, live func(cxlmc.MachineID) bool, machines int) {
	for i := 0; i < x.numObjs; i++ {
		o := x.obj(i)
		state, owner := unpackState(t.Load64(o))
		switch state {
		case 0:
			// Never acquired.
		case objFreed:
			// Reclaimed by recovery.
		case objOwned:
			t.Assert(live(owner), "object %d owned by failed machine %d without recovery", i, owner)
		case objTransferring:
			inboxes := 0
			for m := 0; m < machines; m++ {
				if cxlmc.Addr(t.Load64(x.inbox(cxlmc.MachineID(m)))) == o {
					inboxes++
				}
			}
			t.Assert(inboxes == 1, "object %d in transferring state reachable through %d inboxes", i, inboxes)
		default:
			t.Fail("object %d in impossible state %d", i, state)
		}
	}
}

// TransferProgram builds the ownership-transfer benchmark: machine A
// acquires objects and sends them to B; B receives; when A fails, B
// recovers and the exactly-one-owner invariant must hold in every
// explored execution.
func TransferProgram(bugs Bug) func(*cxlmc.Program) {
	return func(p *cxlmc.Program) {
		const numObjs = 2
		a := p.NewMachine("sender")
		b := p.NewMachine("receiver")
		x := NewXfer(p, numObjs, 2, bugs)
		a.Thread("send", func(t *cxlmc.Thread) {
			for i := 0; i < numObjs; i++ {
				x.Acquire(t, a.ID(), i, uint64(100+i))
			}
			// Send object 0; object 1 stays privately owned so recovery
			// also exercises the reclaim-private-object path.
			x.Send(t, a.ID(), b.ID(), 0)
		})
		b.Thread("recv", func(t *cxlmc.Thread) {
			t.Join(a)
			// The failure monitor's recovery runs before the receive —
			// the concurrency the protocol must tolerate.
			if a.Failed() {
				x.Recover(t, a.ID(), 2)
			}
			x.Receive(t, b.ID())
			x.CheckExactlyOneOwner(t, func(m cxlmc.MachineID) bool { return m == b.ID() && !b.Failed() || m == a.ID() && !a.Failed() }, 2)
		})
	}
}
