package cxlshm

import (
	"testing"

	cxlmc "repro"
)

func explore(t *testing.T, bugs Bug, prog func(Bug) func(*cxlmc.Program), gpf bool) *cxlmc.Result {
	t.Helper()
	res, err := cxlmc.Run(cxlmc.Config{MaxExecutions: 200000, GPF: gpf}, prog(bugs))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestKVFixedClean(t *testing.T) {
	res := explore(t, 0, KVProgram, false)
	if res.Buggy() {
		t.Fatalf("fixed kv buggy: %v", res.Bugs)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

func TestKVLeakDetected(t *testing.T) {
	res := explore(t, BugKVUnimplementedFree, KVProgram, false)
	if !res.Buggy() {
		t.Fatal("kv leak not detected")
	}
	if res.Bugs[0].Kind != cxlmc.BugAssertion {
		t.Fatalf("bug kind = %v", res.Bugs[0].Kind)
	}
}

func TestKVLeakDetectedUnderGPF(t *testing.T) {
	// §6.2: the CXL-SHM bugs are caused by unexpected partial failures
	// during recovery, not cache loss — GPF mode still finds them.
	res := explore(t, BugKVUnimplementedFree, KVProgram, true)
	if !res.Buggy() {
		t.Fatal("kv leak not detected under GPF")
	}
}

func TestStressFixedClean(t *testing.T) {
	res := explore(t, 0, StressProgram, false)
	if res.Buggy() {
		t.Fatalf("fixed stress buggy: %v", res.Bugs)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

func TestStressDivideByZeroDetected(t *testing.T) {
	res := explore(t, BugStaleMetaDivide, StressProgram, false)
	if !res.Buggy() {
		t.Fatal("divide-by-zero not detected")
	}
	if res.Bugs[0].Kind != cxlmc.BugPanic {
		t.Fatalf("bug kind = %v (%s)", res.Bugs[0].Kind, res.Bugs[0].Message)
	}
}

func TestStressDivideByZeroDetectedUnderGPF(t *testing.T) {
	res := explore(t, BugStaleMetaDivide, StressProgram, true)
	if !res.Buggy() {
		t.Fatal("divide-by-zero not detected under GPF")
	}
	if res.Bugs[0].Kind != cxlmc.BugPanic {
		t.Fatalf("bug kind = %v (%s)", res.Bugs[0].Kind, res.Bugs[0].Message)
	}
}

func TestPoolFunctional(t *testing.T) {
	res, err := cxlmc.Run(cxlmc.Config{MaxExecutions: 1}, func(p *cxlmc.Program) {
		a := p.NewMachine("A")
		pool := NewPool(p, 0)
		a.Thread("t", func(th *cxlmc.Thread) {
			pool.Init(th)
			pg := pool.Acquire(th, a.ID(), 32)
			o1 := pool.AllocObj(th, pg)
			o2 := pool.AllocObj(th, pg)
			th.Assert(o2 == o1+32, "bump allocation broken: %#x %#x", o1, o2)
			pool.FreeObj(th, pg)
			pool.FreeObj(th, pg)
			pool.Release(th, pg)
			pg2 := pool.Acquire(th, a.ID(), 16)
			th.Assert(pg2 == pg, "released page should be reused first")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestKVGetPut(t *testing.T) {
	res, err := cxlmc.Run(cxlmc.Config{MaxExecutions: 1}, func(p *cxlmc.Program) {
		a := p.NewMachine("A")
		pool := NewPool(p, 0)
		kv := NewKV(p, pool, 4)
		a.Thread("t", func(th *cxlmc.Thread) {
			pool.Init(th)
			kv.Init(th)
			pg := pool.Acquire(th, a.ID(), 16)
			kv.Put(th, pg, 1, 100)
			kv.Put(th, pg, 2, 200)
			v, ok := kv.Get(th, 1)
			th.Assert(ok && v == 100, "get 1: %d %v", v, ok)
			v, ok = kv.Get(th, 2)
			th.Assert(ok && v == 200, "get 2: %d %v", v, ok)
			_, ok = kv.Get(th, 3)
			th.Assert(!ok, "phantom key")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buggy() {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestTransferProtocolCrashConsistent(t *testing.T) {
	res := explore(t, 0, TransferProgram, false)
	if res.Buggy() {
		t.Fatalf("fixed transfer protocol buggy: %v", res.Bugs)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

func TestTransferMissingStateFlushDetected(t *testing.T) {
	res := explore(t, BugXferNoTransferFlush, TransferProgram, false)
	if !res.Buggy() {
		t.Fatal("missing transferring-mark flush not detected")
	}
}

func TestTransferProtocolUnderGPF(t *testing.T) {
	// Under GPF nothing is ever lost from caches, so even the buggy
	// variant is clean: the hazard is purely a persistence-ordering one.
	res := explore(t, BugXferNoTransferFlush, TransferProgram, true)
	if res.Buggy() {
		t.Fatalf("transfer bug visible under GPF: %v", res.Bugs)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

// TestTransferChainThreeMachines hands an object A→B→C with failures of
// any subset explored; the exactly-one-owner invariant must hold for
// every surviving observer.
func TestTransferChainThreeMachines(t *testing.T) {
	res, err := cxlmc.Run(cxlmc.Config{MaxExecutions: 2_000_000}, func(p *cxlmc.Program) {
		a := p.NewMachine("A")
		b := p.NewMachine("B")
		c := p.NewMachine("C")
		x := NewXfer(p, 1, 3, 0)
		a.Thread("t", func(t *cxlmc.Thread) {
			x.Acquire(t, a.ID(), 0, 7)
			x.Send(t, a.ID(), b.ID(), 0)
		})
		b.Thread("t", func(t *cxlmc.Thread) {
			t.Join(a)
			if a.Failed() {
				x.Recover(t, a.ID(), 3)
			}
			if _, ok := x.Receive(t, b.ID()); ok {
				x.Send(t, b.ID(), c.ID(), 0)
			}
		})
		c.Thread("t", func(t *cxlmc.Thread) {
			t.Join(a)
			t.Join(b)
			if a.Failed() {
				x.Recover(t, a.ID(), 3)
			}
			if b.Failed() {
				x.Recover(t, b.ID(), 3)
			}
			x.Receive(t, c.ID())
			x.CheckExactlyOneOwner(t, func(m cxlmc.MachineID) bool {
				switch m {
				case a.ID():
					return !a.Failed()
				case b.ID():
					return !b.Failed()
				default:
					return !c.Failed()
				}
			}, 3)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buggy() {
		t.Fatalf("chain transfer bugs: %v", res.Bugs)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}
