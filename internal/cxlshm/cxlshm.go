// Package cxlshm reimplements the benchmarks CXLMC took from CXL-SHM
// (Zhang et al., SOSP 2023) — a partial-failure resilient memory
// management system for CXL-based distributed shared memory — with the
// two Table 4 bugs behind toggles.
//
// The model: a shared page pool whose per-page metadata (owner machine,
// object size, allocation/free counters) lives in CXL memory. Machines
// acquire pages, bump-allocate objects out of them, and free them; when
// a machine fails, a failure monitor / recovery procedure on a surviving
// machine garbage-collects the failed machine's pages and a
// recovery-check verifies that nothing allocated by the failed machine
// leaks.
//
// Both paper bugs are partial-failure logic bugs — they need no cache
// loss at all, which is why the paper still finds them in GPF mode
// (§6.2):
//
//   - kv (Table 4 #1): the recovery procedure cannot garbage-collect a
//     crashed kv program because recovery for kv data is unimplemented
//     (the original code comments cite an ABA problem), so the
//     recovery check finds unfreed memory.
//   - test_stress (Table 4 #2): the monitor loop zeroes a page-metadata
//     struct in the later part of an iteration and uses a field of that
//     struct as a divisor in the next iteration — dividing by zero.
package cxlshm

import (
	cxlmc "repro"
)

// Bug is a bitmask of seeded bugs.
type Bug uint32

// Seeded bugs (Table 4 numbering).
const (
	// BugKVUnimplementedFree (#1): recovery skips garbage-collecting kv
	// data pages of the failed machine.
	BugKVUnimplementedFree Bug = 1 << iota
	// BugStaleMetaDivide (#2): the monitor computes a page's object
	// count from the previous iteration's metadata struct, which the
	// previous iteration may just have zeroed.
	BugStaleMetaDivide
)

// Has reports whether bug b is enabled.
func (bugs Bug) Has(b Bug) bool { return bugs&b != 0 }

// Pool geometry.
const (
	NumPages = 4
	PageSize = 256
	// Page metadata layout (one line per page).
	offOwner   = 0 // owning machine + 1; 0 = free
	offObjSize = 8
	offAlloc   = 16 // objects allocated
	offFree    = 24 // objects freed
)

// Pool is the shared page pool.
type Pool struct {
	mu    *cxlmc.Mutex
	meta  cxlmc.Addr // NumPages metadata lines
	pages cxlmc.Addr // NumPages * PageSize payload
	bugs  Bug
}

// NewPool lays out the pool (no simulated stores; see Init).
func NewPool(p *cxlmc.Program, bugs Bug) *Pool {
	return &Pool{
		mu:    p.NewMutex("cxlshm"),
		meta:  p.AllocAligned(NumPages*64, 64),
		pages: p.AllocAligned(NumPages*PageSize, 64),
		bugs:  bugs,
	}
}

// metaAddr returns page i's metadata line.
func (pl *Pool) metaAddr(i int) cxlmc.Addr { return pl.meta + cxlmc.Addr(i*64) }

// pageAddr returns page i's payload base.
func (pl *Pool) pageAddr(i int) cxlmc.Addr { return pl.pages + cxlmc.Addr(i*PageSize) }

// Init initializes and flushes the pool metadata (all pages free).
func (pl *Pool) Init(t *cxlmc.Thread) {
	for i := 0; i < NumPages; i++ {
		m := pl.metaAddr(i)
		t.Store64(m+offOwner, 0)
		t.CLFlushOpt(m)
	}
	t.SFence()
}

// Acquire grabs a free page for machine mach with the given object size,
// committing the flushed metadata before returning the page index.
func (pl *Pool) Acquire(t *cxlmc.Thread, mach cxlmc.MachineID, objSize uint64) int {
	pl.mu.Lock(t)
	defer pl.mu.Unlock(t)
	for i := 0; i < NumPages; i++ {
		m := pl.metaAddr(i)
		if t.Load64(m+offOwner) != 0 {
			continue
		}
		t.Store64(m+offObjSize, objSize)
		t.Store64(m+offAlloc, 0)
		t.Store64(m+offFree, 0)
		t.CLFlush(m)
		t.SFence()
		t.Store64(m+offOwner, uint64(mach)+1)
		t.CLFlush(m)
		t.SFence()
		return i
	}
	t.Fail("cxlshm: page pool exhausted")
	return -1
}

// AllocObj bump-allocates one object from page i, with a flushed
// counter update so allocations survive the allocator's failure.
func (pl *Pool) AllocObj(t *cxlmc.Thread, i int) cxlmc.Addr {
	m := pl.metaAddr(i)
	objSize := t.Load64(m + offObjSize)
	n := t.Load64(m + offAlloc)
	if (n+1)*objSize > PageSize {
		t.Fail("cxlshm: page %d exhausted", i)
	}
	t.Store64(m+offAlloc, n+1)
	t.CLFlush(m)
	t.SFence()
	return pl.pageAddr(i) + cxlmc.Addr(n*objSize)
}

// FreeObj records one freed object on page i.
func (pl *Pool) FreeObj(t *cxlmc.Thread, i int) {
	m := pl.metaAddr(i)
	t.Store64(m+offFree, t.Load64(m+offFree)+1)
	t.CLFlush(m)
	t.SFence()
}

// Release returns a fully-freed page to the pool, zeroing its metadata.
func (pl *Pool) Release(t *cxlmc.Thread, i int) {
	m := pl.metaAddr(i)
	t.Store64(m+offOwner, 0)
	t.Store64(m+offObjSize, 0)
	t.Store64(m+offAlloc, 0)
	t.Store64(m+offFree, 0)
	t.CLFlush(m)
	t.SFence()
}

// Monitor is the failure monitor's reclamation pass over the page pool
// after machine failed died: every page the failed machine owned is
// scanned (object count = page size / object size) and reclaimed.
//
// Bug #2: the divisor is read through the metadata pointer carried over
// from the previous loop iteration — which the previous iteration may
// just have zeroed during reclamation.
func (pl *Pool) Monitor(t *cxlmc.Thread, failed cxlmc.MachineID) {
	pl.mu.Lock(t)
	defer pl.mu.Unlock(t)
	m := pl.metaAddr(0) // carried across iterations (the bug's seed)
	for i := 0; i < NumPages; i++ {
		cur := pl.metaAddr(i)
		owner := t.Load64(cur + offOwner)
		if owner == uint64(failed)+1 {
			divisor := cur + offObjSize
			if pl.bugs.Has(BugStaleMetaDivide) {
				divisor = m + offObjSize
			}
			objs := PageSize / t.Load64(divisor) // panics on a zeroed struct
			allocated := t.Load64(cur + offAlloc)
			t.Assert(allocated <= objs, "cxlshm: page %d over-allocated (%d/%d)", i, allocated, objs)
			// Later part of the iteration: reclaim, zeroing the struct.
			pl.Release(t, i)
		}
		m = cur
	}
}

// KV is the kv benchmark: a fixed table of flushed object pointers whose
// objects come from the pool.
type KV struct {
	pool  *Pool
	table cxlmc.Addr
	slots int
}

// NewKV lays out a kv store with the given number of slots.
func NewKV(p *cxlmc.Program, pool *Pool, slots int) *KV {
	return &KV{pool: pool, table: p.AllocAligned(uint64(slots)*8, 64), slots: slots}
}

// Init flushes the empty table.
func (kv *KV) Init(t *cxlmc.Thread) {
	for off := cxlmc.Addr(0); off < cxlmc.Addr(kv.slots*8); off += 64 {
		t.CLFlushOpt(kv.table + off)
	}
	t.SFence()
}

// Put stores key→val in a fresh object from page and commits the table
// slot with a flushed store.
func (kv *KV) Put(t *cxlmc.Thread, page int, key, val uint64) {
	obj := kv.pool.AllocObj(t, page)
	t.Store64(obj, key)
	t.Store64(obj+8, val)
	t.CLFlush(obj)
	t.SFence()
	slot := kv.table + cxlmc.Addr(int(key)%kv.slots*8)
	t.Store64(slot, uint64(obj))
	t.CLFlush(slot)
	t.SFence()
}

// Get returns the value for key.
func (kv *KV) Get(t *cxlmc.Thread, key uint64) (uint64, bool) {
	obj := cxlmc.Addr(t.Load64(kv.table + cxlmc.Addr(int(key)%kv.slots*8)))
	if obj == 0 {
		return 0, false
	}
	if t.Load64(obj) != key {
		return 0, false
	}
	return t.Load64(obj + 8), true
}

// Recover garbage-collects the failed machine's pages: kv objects still
// referenced from the table are unlinked and freed, and fully-freed
// pages return to the pool. Bug #1 leaves kv data pages untouched —
// "recovery for kv data is yet to be implemented due to an ABA problem".
func (kv *KV) Recover(t *cxlmc.Thread, failed cxlmc.MachineID) {
	pl := kv.pool
	pl.mu.Lock(t)
	defer pl.mu.Unlock(t)
	for i := 0; i < NumPages; i++ {
		m := pl.metaAddr(i)
		if t.Load64(m+offOwner) != uint64(failed)+1 {
			continue
		}
		if pl.bugs.Has(BugKVUnimplementedFree) {
			continue // TODO(upstream): ABA problem — kv GC unimplemented
		}
		// Unlink and free every table-referenced object in this page.
		lo := pl.pageAddr(i)
		hi := lo + PageSize
		for s := 0; s < kv.slots; s++ {
			slot := kv.table + cxlmc.Addr(s*8)
			obj := cxlmc.Addr(t.Load64(slot))
			if obj >= lo && obj < hi {
				t.Store64(slot, 0)
				t.CLFlush(slot)
				t.SFence()
				pl.FreeObj(t, i)
			}
		}
		// Unreachable allocations (orphans of crashed Puts) are freed
		// wholesale: nothing can refer to them.
		allocated := t.Load64(m + offAlloc)
		freed := t.Load64(m + offFree)
		if freed < allocated {
			t.Store64(m+offFree, allocated)
			t.CLFlush(m)
			t.SFence()
		}
		pl.Release(t, i)
	}
}

// RecoveryCheck asserts that the failed machine holds no memory: every
// page it owned must have been garbage-collected and returned to the
// pool. This is the paper's recovery_check program.
func (kv *KV) RecoveryCheck(t *cxlmc.Thread, failed cxlmc.MachineID) {
	pl := kv.pool
	for i := 0; i < NumPages; i++ {
		m := pl.metaAddr(i)
		owner := t.Load64(m + offOwner)
		t.Assert(owner != uint64(failed)+1,
			"cxlshm: unfreed memory: page %d still owned by failed machine (alloc=%d free=%d)",
			i, t.Load64(m+offAlloc), t.Load64(m+offFree))
	}
}

// BugCase describes one Table 4 row for the harness.
type BugCase struct {
	Name    string
	Desc    string
	New     bool
	Bit     Bug
	Program func(bugs Bug) func(*cxlmc.Program)
}

// Cases lists the Table 4 benchmarks.
var Cases = []BugCase{
	{Name: "kv", Desc: "Unimplemented free procedure", New: true, Bit: BugKVUnimplementedFree, Program: KVProgram},
	{Name: "test_stress", Desc: "Divide-by-zero error", New: true, Bit: BugStaleMetaDivide, Program: StressProgram},
}

// KVProgram builds the kv + recovery_check benchmark: one machine runs
// the kv workload while the other recovers after its failure and checks
// for leaks.
func KVProgram(bugs Bug) func(*cxlmc.Program) {
	return func(p *cxlmc.Program) {
		pool := NewPool(p, bugs)
		kv := NewKV(p, pool, 4)
		a := p.NewMachine("kv")
		b := p.NewMachine("checker")
		a.Thread("kv", func(t *cxlmc.Thread) {
			pool.Init(t)
			kv.Init(t)
			page := pool.Acquire(t, a.ID(), 16)
			for k := uint64(1); k <= 4; k++ {
				kv.Put(t, page, k, k*100)
			}
		})
		b.Thread("recovery_check", func(t *cxlmc.Thread) {
			if !t.Join(a) {
				return // no failure: nothing to recover
			}
			kv.Recover(t, a.ID())
			kv.RecoveryCheck(t, a.ID())
		})
	}
}

// StressProgram builds the test_stress + monitor benchmark: one machine
// stresses the allocator while the other runs the failure monitor.
func StressProgram(bugs Bug) func(*cxlmc.Program) {
	return func(p *cxlmc.Program) {
		pool := NewPool(p, bugs)
		a := p.NewMachine("stress")
		b := p.NewMachine("monitor")
		a.Thread("stress", func(t *cxlmc.Thread) {
			pool.Init(t)
			for round := 0; round < 2; round++ {
				pg := pool.Acquire(t, a.ID(), 32)
				for j := 0; j < 3; j++ {
					obj := pool.AllocObj(t, pg)
					t.Store64(obj, uint64(j)+1)
					t.CLFlush(obj)
					t.SFence()
				}
				// Keep the page owned: the monitor reclaims it if we die.
			}
		})
		b.Thread("monitor", func(t *cxlmc.Thread) {
			if !t.Join(a) {
				return
			}
			pool.Monitor(t, a.ID())
			// After a full monitor pass nothing of the failed machine
			// may remain.
			for i := 0; i < NumPages; i++ {
				owner := t.Load64(pool.metaAddr(i) + offOwner)
				t.Assert(owner != uint64(a.ID())+1, "cxlshm: page %d not reclaimed", i)
			}
		})
	}
}
